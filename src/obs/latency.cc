// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/obs/latency.h"

#include <algorithm>

#include "src/obs/json.h"

namespace asfobs {

void LatencyStats::Observe(uint64_t total) {
  size_t i = 0;
  while (i < kNumBounds && total > BucketBound(i)) {
    ++i;
  }
  buckets[i] += 1;
  if (count == 0 || total < min) {
    min = total;
  }
  if (total > max) {
    max = total;
  }
  ++count;
  sum += total;
}

void LatencyStats::Merge(const LatencyStats& other) {
  if (other.count != 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = std::max(max, other.max);
  }
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  wasted_cycles += other.wasted_cycles;
  backoff_cycles += other.backoff_cycles;
  serial_cycles += other.serial_cycles;
  aborted_attempts += other.aborted_attempts;
  clean_blocks += other.clean_blocks;
  retried_blocks += other.retried_blocks;
  for (size_t m = 0; m < kNumModes; ++m) {
    commits_by_mode[m] += other.commits_by_mode[m];
  }
}

uint64_t LatencyStats::Percentile(double p) const {
  if (count == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count) + 0.5);
  rank = std::max<uint64_t>(1, std::min(rank, count));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return i < kNumBounds ? BucketBound(i) : max;
    }
  }
  return max;
}

void WriteLatencyJson(JsonWriter& w, const LatencyStats& s) {
  w.BeginObject();
  w.KV("count", s.count);
  w.KV("sum", s.sum);
  w.KV("min", s.min);
  w.KV("max", s.max);
  w.KV("mean", s.Mean());
  w.KV("p50", s.Percentile(50.0));
  w.KV("p90", s.Percentile(90.0));
  w.KV("p99", s.Percentile(99.0));
  w.KV("p999", s.Percentile(99.9));
  w.KV("wastedCycles", s.wasted_cycles);
  w.KV("backoffCycles", s.backoff_cycles);
  w.KV("serialCycles", s.serial_cycles);
  w.KV("abortedAttempts", s.aborted_attempts);
  w.KV("cleanBlocks", s.clean_blocks);
  w.KV("retriedBlocks", s.retried_blocks);
  w.KV("wastedRatio", s.WastedRatio());
  w.Key("commitsByMode");
  w.BeginObject();
  for (size_t m = 0; m < LatencyStats::kNumModes; ++m) {
    if (s.commits_by_mode[m] != 0) {
      w.KV(TxModeName(static_cast<TxMode>(m)), s.commits_by_mode[m]);
    }
  }
  w.EndObject();
  // Sparse [bound, count] pairs; the overflow bucket's bound is "inf".
  w.Key("buckets");
  w.BeginArray();
  for (size_t i = 0; i < LatencyStats::kNumBuckets; ++i) {
    if (s.buckets[i] == 0) {
      continue;
    }
    w.BeginArray();
    if (i < LatencyStats::kNumBounds) {
      w.UInt(LatencyStats::BucketBound(i));
    } else {
      w.String("inf");
    }
    w.UInt(s.buckets[i]);
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();
}

LatencyRecorder::CoreState& LatencyRecorder::StateFor(uint32_t core) {
  if (core >= cores_.size()) {
    cores_.resize(core + 1);
  }
  return cores_[core];
}

void LatencyRecorder::OnTxEvent(const TxEvent& ev) {
  CoreState& st = StateFor(ev.core);
  switch (ev.kind) {
    case TxEventKind::kTxBegin:
      if (!st.open) {
        // First attempt of a new atomic block. (A begin with a block already
        // open is a retry or an inner-runtime delegation — e.g. PhasedTm's
        // software phase running through TinyStm — and stays in the block.)
        st.open = true;
        st.block_start = ev.cycle;
        st.wasted = 0;
        st.backoff = 0;
        st.serial = 0;
        st.aborted = 0;
      }
      st.attempt_start = ev.cycle;
      st.attempt_mode = ev.mode;
      break;
    case TxEventKind::kTxAbort:
      if (st.open) {
        uint64_t spent = ev.cycle - st.attempt_start;
        st.wasted += spent;
        if (ev.mode == TxMode::kSerial) {
          st.serial += spent;
        }
        ++st.aborted;
        st.attempt_start = ev.cycle;
      }
      break;
    case TxEventKind::kTxCommit:
      if (st.open) {
        if (ev.mode == TxMode::kSerial) {
          st.serial += ev.cycle - st.attempt_start;
        }
        uint64_t total = ev.cycle - st.block_start;
        bool retried = st.aborted != 0;
        LatencyStats* dsts[2] = {&stats_, &keyed_[KeyIndex(ev.mode, retried)]};
        for (LatencyStats* dst : dsts) {
          dst->Observe(total);
          dst->wasted_cycles += st.wasted;
          dst->backoff_cycles += st.backoff;
          dst->serial_cycles += st.serial;
          dst->aborted_attempts += st.aborted;
          if (retried) {
            ++dst->retried_blocks;
          } else {
            ++dst->clean_blocks;
          }
          dst->commits_by_mode[static_cast<size_t>(ev.mode)] += 1;
        }
        st.open = false;
      }
      break;
    case TxEventKind::kBackoffEnd:
      if (st.open) {
        st.backoff += ev.arg0;
      }
      break;
    default:
      break;
  }
  if (next_ != nullptr) {
    next_->OnTxEvent(ev);
  }
}

void LatencyRecorder::OnMeasurementReset() {
  cores_.clear();
  stats_ = LatencyStats{};
  keyed_.fill(LatencyStats{});
  if (next_ != nullptr) {
    next_->OnMeasurementReset();
  }
}

void ReplayLatency(const std::vector<TxEvent>& events, LatencyRecorder* out) {
  for (const TxEvent& ev : events) {
    out->OnTxEvent(ev);
  }
}

LatencyStats ComputeLatencyFromEvents(const std::vector<TxEvent>& events) {
  LatencyRecorder rec;
  ReplayLatency(events, &rec);
  return rec.stats();
}

}  // namespace asfobs
