// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Metrics registry: named counters and fixed-bucket histograms populated by
// host-side observers. Means hide the TM scalability cliffs the paper's
// methodology is after — per-transaction *distributions* (retry counts,
// latencies, set sizes) are what explain them — so histograms are first-class
// here, with deterministic registration order for reproducible exports.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/defs.h"

namespace asfobs {

class JsonWriter;

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  uint64_t value() const { return value_; }
  void Increment(uint64_t by = 1) { value_ += by; }
  void Reset() { value_ = 0; }

 private:
  std::string name_;
  uint64_t value_ = 0;
};

// Fixed-bucket histogram over uint64 samples. Bucket i counts samples v with
// v <= bounds[i] (first matching bucket); samples above the last bound land
// in the overflow bucket. Bounds are fixed at construction: observation is
// O(#buckets) worst case with no allocation, cheap enough for per-event use.
class Histogram {
 public:
  Histogram(std::string name, std::vector<uint64_t> bounds);

  const std::string& name() const { return name_; }
  void Observe(uint64_t v);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  // Upper-bound estimate of the p-th percentile (0 < p <= 100): the bound of
  // the bucket containing rank round(p/100 * count), clamped to [1, count].
  // Edge cases are pinned down by contract (and tests):
  //   - empty histogram: returns 0;
  //   - rank lands in the overflow bucket (value > last bound): returns
  //     max(), the largest value actually observed — never the meaningless
  //     UINT64_MAX overflow "bound";
  //   - single sample: every percentile reports that sample's bucket bound
  //     (or max() when it overflowed).
  uint64_t Percentile(double p) const;

  size_t num_buckets() const { return bounds_.size() + 1; }  // + overflow.
  // Bound of bucket i; the overflow bucket reports UINT64_MAX.
  uint64_t BucketBound(size_t i) const;
  uint64_t BucketCount(size_t i) const { return buckets_[i]; }

 private:
  std::string name_;
  std::vector<uint64_t> bounds_;   // Strictly increasing.
  std::vector<uint64_t> buckets_;  // bounds_.size() + 1 (overflow last).
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// Common bucket layouts.
std::vector<uint64_t> ExponentialBuckets(uint64_t first, double factor, size_t count);
std::vector<uint64_t> LinearBuckets(uint64_t first, uint64_t step, size_t count);

// Host-side conflict-directory telemetry (asf::ConflictDirectory::Stats,
// mirrored field for field so this layer stays independent of src/asf).
// RecordConflictDirectory folds a snapshot into `registry` under the
// "conflict_directory.*" counter names — registering them on first use,
// overwriting on subsequent calls — so metric exports place the directory's
// gate and probe rates next to the lifecycle metrics.
struct ConflictDirectoryCounters {
  uint64_t resolutions = 0;     // Conflict-resolution invocations.
  uint64_t gate_skips = 0;      // Skipped: no other active speculator.
  uint64_t solo_fast_paths = 0; // Single-speculator short circuit taken.
  uint64_t probes = 0;          // Directory line lookups.
  uint64_t probe_hits = 0;      // Lookups that found a record.
};

// Owns counters and histograms; names are unique. Registration order is the
// export order, so runs are byte-for-byte comparable.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& AddCounter(const std::string& name);
  Histogram& AddHistogram(const std::string& name, std::vector<uint64_t> bounds);

  Counter* FindCounter(const std::string& name);
  Histogram* FindHistogram(const std::string& name);

  const std::vector<std::unique_ptr<Counter>>& counters() const { return counters_; }
  const std::vector<std::unique_ptr<Histogram>>& histograms() const { return histograms_; }

  // Zeroes every metric (registration survives).
  void Reset();

  // Serializes as {"counters": {...}, "histograms": {...}}.
  void WriteJson(JsonWriter& w) const;

 private:
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

void RecordConflictDirectory(MetricsRegistry& registry, const ConflictDirectoryCounters& c);

}  // namespace asfobs

#endif  // SRC_OBS_METRICS_H_
