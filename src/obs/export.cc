// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "src/common/defs.h"
#include "src/obs/json.h"

namespace asfobs {

namespace {

// Spans are tagged with core-local attempt ids; make them globally unique.
// Attempt sequence numbers stay far below 2^48 in any feasible run.
uint64_t AttemptKey(uint32_t core, uint64_t attempt) {
  return (static_cast<uint64_t>(core) << 48) | attempt;
}

// Track ids within the trace's single process: two lanes per core, one for
// memory operations and one for transaction lifecycle slices.
int64_t MemTid(uint32_t core) { return 2 * static_cast<int64_t>(core) + 1; }
int64_t TxTid(uint32_t core) { return 2 * static_cast<int64_t>(core) + 2; }

void MetadataEvent(JsonWriter& w, const char* what, int64_t tid, const std::string& name) {
  w.BeginObject();
  w.KV("ph", "M");
  w.KV("name", what);
  w.KV("pid", 1);
  if (tid >= 0) {
    w.KV("tid", tid);
  }
  w.Key("args");
  w.BeginObject();
  w.KV("name", name);
  w.EndObject();
  w.EndObject();
}

void EventCommon(JsonWriter& w, const char* ph, const std::string& name, int64_t tid,
                 uint64_t ts) {
  w.KV("ph", ph);
  w.KV("name", name);
  w.KV("pid", 1);
  w.KV("tid", tid);
  w.KV("ts", ts);
}

}  // namespace

TraceAnalysis AnalyzeTrace(const std::vector<asfsim::CycleSpan>& spans,
                           const std::vector<TxEvent>& tx_events) {
  TraceAnalysis a;

  // (core, attempt) -> cause of the abort that invalidated it; attempts only
  // die once, so a plain overwrite map suffices.
  std::unordered_map<uint64_t, asfcommon::AbortCause> aborted;
  for (const TxEvent& ev : tx_events) {
    if (ev.kind == TxEventKind::kTxAbort && ev.attempt != 0) {
      aborted[AttemptKey(ev.core, ev.attempt)] = ev.cause;
    }
  }

  bool first = true;
  for (const asfsim::CycleSpan& s : spans) {
    asfsim::CycleCategory cat = s.category;
    if (s.attempt != 0) {
      auto it = aborted.find(AttemptKey(s.core, s.attempt));
      if (it != aborted.end()) {
        cat = asfsim::CycleCategory::kTxAbortWaste;
        a.wasted_by_cause[static_cast<size_t>(it->second)] += s.cycles;
      }
    }
    a.category_cycles[static_cast<size_t>(cat)] += s.cycles;
    a.total_cycles += s.cycles;
    if (first || s.start < a.first_cycle) {
      a.first_cycle = s.start;
    }
    if (first || s.start + s.cycles > a.last_cycle) {
      a.last_cycle = s.start + s.cycles;
    }
    first = false;
  }

  for (const TxEvent& ev : tx_events) {
    switch (ev.kind) {
      case TxEventKind::kTxCommit:
        ++a.total_commits;
        a.commits_by_mode[static_cast<size_t>(ev.mode)] += 1;
        break;
      case TxEventKind::kTxAbort:
        ++a.total_aborts;
        a.aborts_by_cause[static_cast<size_t>(ev.cause)] += 1;
        break;
      case TxEventKind::kFallbackTransition:
        ++a.fallback_transitions;
        break;
      case TxEventKind::kBackoffEnd:
        ++a.backoff_windows;
        a.backoff_cycles += ev.arg0;
        break;
      case TxEventKind::kFaultInjected:
        ++a.total_injected;
        a.injected_by_cause[static_cast<size_t>(ev.cause)] += 1;
        break;
      case TxEventKind::kConflictEdge:
        ++a.conflict_edges;
        a.matrix_cores = std::max(
            a.matrix_cores, std::max(ev.core, ConflictEdgeAggressor(ev.arg1)) + 1);
        break;
      default:
        break;
    }
  }
  if (a.matrix_cores != 0) {
    a.aggression.assign(static_cast<size_t>(a.matrix_cores) * a.matrix_cores, 0);
    for (const TxEvent& ev : tx_events) {
      if (ev.kind == TxEventKind::kConflictEdge) {
        a.aggression[static_cast<size_t>(ConflictEdgeAggressor(ev.arg1)) * a.matrix_cores +
                     ev.core] += 1;
      }
    }
  }
  return a;
}

std::string WritePerfettoTrace(const PerfettoInput& in) {
  static const std::vector<asfsim::TraceEvent> kNoMemEvents;
  static const std::vector<asfsim::CycleSpan> kNoSpans;
  static const std::vector<TxEvent> kNoTxEvents;
  const auto& mem = in.mem_events != nullptr ? *in.mem_events : kNoMemEvents;
  const auto& spans = in.spans != nullptr ? *in.spans : kNoSpans;
  const auto& txs = in.tx_events != nullptr ? *in.tx_events : kNoTxEvents;

  TraceAnalysis analysis = AnalyzeTrace(spans, txs);

  std::string out;
  out.reserve(256 + mem.size() * 120 + txs.size() * 100 + spans.size() * 30);
  JsonWriter w(&out);
  w.BeginObject();
  w.KV("displayTimeUnit", "ns");

  w.Key("traceEvents");
  w.BeginArray();

  MetadataEvent(w, "process_name", -1, in.benchmark);
  for (uint32_t c = 0; c < in.num_cores; ++c) {
    MetadataEvent(w, "thread_name", MemTid(c), "core " + std::to_string(c) + " mem");
    MetadataEvent(w, "thread_name", TxTid(c), "core " + std::to_string(c) + " tx");
  }

  for (const asfsim::TraceEvent& ev : mem) {
    w.BeginObject();
    EventCommon(w, "X", asfsim::AccessKindName(ev.kind), MemTid(ev.core), ev.cycle);
    w.KV("dur", ev.latency);
    w.KV("cat", asfsim::CycleCategoryName(ev.category));
    w.Key("args");
    w.BeginObject();
    char addr[32];
    std::snprintf(addr, sizeof(addr), "0x%llx", static_cast<unsigned long long>(ev.addr));
    w.KV("addr", addr);
    w.KV("size", ev.size);
    w.EndObject();
    w.EndObject();
  }

  for (const TxEvent& ev : txs) {
    w.BeginObject();
    switch (ev.kind) {
      case TxEventKind::kTxBegin:
        EventCommon(w, "B", std::string("tx:") + TxModeName(ev.mode), TxTid(ev.core), ev.cycle);
        w.Key("args");
        w.BeginObject();
        w.KV("attempt", ev.attempt);
        w.KV("retry", ev.retry);
        w.EndObject();
        break;
      case TxEventKind::kTxCommit:
        EventCommon(w, "E", std::string("tx:") + TxModeName(ev.mode), TxTid(ev.core), ev.cycle);
        w.Key("args");
        w.BeginObject();
        w.KV("outcome", "commit");
        w.KV("readSet", ev.arg0);
        w.KV("writeSet", ev.arg1);
        w.KV("retry", ev.retry);
        w.EndObject();
        break;
      case TxEventKind::kTxAbort:
        EventCommon(w, "E", std::string("tx:") + TxModeName(ev.mode), TxTid(ev.core), ev.cycle);
        w.Key("args");
        w.BeginObject();
        w.KV("outcome", "abort");
        w.KV("cause", asfcommon::AbortCauseName(ev.cause));
        w.EndObject();
        break;
      case TxEventKind::kFallbackTransition:
        EventCommon(w, "i",
                    std::string("fallback:") + TxModeName(static_cast<TxMode>(ev.arg0)) + "->" +
                        TxModeName(ev.mode),
                    TxTid(ev.core), ev.cycle);
        w.KV("s", "t");
        break;
      case TxEventKind::kBackoffStart:
        EventCommon(w, "B", "backoff", TxTid(ev.core), ev.cycle);
        break;
      case TxEventKind::kBackoffEnd:
        EventCommon(w, "E", "backoff", TxTid(ev.core), ev.cycle);
        break;
      case TxEventKind::kFaultInjected:
        EventCommon(w, "i", std::string("fault:") + asfcommon::AbortCauseName(ev.cause),
                    TxTid(ev.core), ev.cycle);
        w.KV("s", "t");
        break;
      case TxEventKind::kConflictEdge: {
        EventCommon(w, "i",
                    std::string("conflict:core") +
                        std::to_string(ConflictEdgeAggressor(ev.arg1)) + "->core" +
                        std::to_string(ev.core),
                    TxTid(ev.core), ev.cycle);
        w.KV("s", "t");
        w.Key("args");
        w.BeginObject();
        char line[32];
        std::snprintf(line, sizeof(line), "0x%llx", static_cast<unsigned long long>(ev.arg0));
        w.KV("line", line);
        w.KV("victimRole", ConflictEdgeVictimWasWriter(ev.arg1) ? "writer" : "reader");
        w.KV("aggressorAccess", ConflictEdgeWriteLike(ev.arg1) ? "write" : "read");
        w.EndObject();
        break;
      }
      case TxEventKind::kNumKinds:
        break;
    }
    w.EndObject();
  }
  w.EndArray();

  // Custom section (ignored by Perfetto): raw data + totals for re-analysis
  // by tools/trace_report, in compact positional-array form.
  w.Key("asf");
  w.BeginObject();
  w.KV("benchmark", in.benchmark);
  w.KV("numCores", in.num_cores);

  w.Key("categoryTotals");
  w.BeginObject();
  for (size_t i = 0; i < analysis.category_cycles.size(); ++i) {
    w.KV(asfsim::CycleCategoryName(static_cast<asfsim::CycleCategory>(i)),
         analysis.category_cycles[i]);
  }
  w.EndObject();

  w.Key("analysis");
  w.BeginObject();
  w.KV("totalCycles", analysis.total_cycles);
  w.KV("commits", analysis.total_commits);
  w.KV("aborts", analysis.total_aborts);
  w.KV("abortRatePercent", analysis.AbortRatePercent());
  w.KV("fallbackTransitions", analysis.fallback_transitions);
  w.KV("backoffWindows", analysis.backoff_windows);
  w.KV("backoffCycles", analysis.backoff_cycles);
  w.KV("conflictEdges", analysis.conflict_edges);
  w.EndObject();

  // [[start, cycles, core, category, attempt], ...]
  w.Key("spans");
  w.BeginArray();
  for (const asfsim::CycleSpan& s : spans) {
    w.BeginArray();
    w.UInt(s.start);
    w.UInt(s.cycles);
    w.UInt(s.core);
    w.UInt(static_cast<uint64_t>(s.category));
    w.UInt(s.attempt);
    w.EndArray();
  }
  w.EndArray();

  // [[cycle, core, kind, mode, cause, attempt, retry, arg0, arg1], ...]
  w.Key("txEvents");
  w.BeginArray();
  for (const TxEvent& ev : txs) {
    w.BeginArray();
    w.UInt(ev.cycle);
    w.UInt(ev.core);
    w.UInt(static_cast<uint64_t>(ev.kind));
    w.UInt(static_cast<uint64_t>(ev.mode));
    w.UInt(static_cast<uint64_t>(ev.cause));
    w.UInt(ev.attempt);
    w.UInt(ev.retry);
    w.UInt(ev.arg0);
    w.UInt(ev.arg1);
    w.EndArray();
  }
  w.EndArray();

  // Offline aggregation of the memory-op events (asfsim::Summarize), so the
  // report tool can cross-check its own traceEvents re-aggregation.
  asfsim::TraceSummary mem_summary = asfsim::Summarize(mem);
  w.Key("memSummary");
  w.BeginObject();
  w.KV("totalOps", mem_summary.total_ops);
  w.KV("totalLatency", mem_summary.total_latency);
  w.KV("firstCycle", mem_summary.first_cycle);
  w.KV("lastCycle", mem_summary.last_cycle);
  w.Key("opsByKind");
  w.BeginObject();
  for (size_t i = 0; i <= static_cast<size_t>(asfsim::AccessKind::kSyscall); ++i) {
    if (mem_summary.ops_by_kind[i] != 0) {
      w.KV(asfsim::AccessKindName(static_cast<asfsim::AccessKind>(i)), mem_summary.ops_by_kind[i]);
    }
  }
  w.EndObject();
  w.Key("latencyByCategory");
  w.BeginObject();
  for (size_t i = 0; i < mem_summary.cycles_by_category.size(); ++i) {
    w.KV(asfsim::CycleCategoryName(static_cast<asfsim::CycleCategory>(i)),
         mem_summary.cycles_by_category[i]);
  }
  w.EndObject();
  w.EndObject();

  w.EndObject();  // asf
  w.EndObject();  // root
  out.push_back('\n');
  return out;
}

bool LoadAsfSection(const JsonValue& root, std::vector<asfsim::CycleSpan>* spans,
                    std::vector<TxEvent>* tx_events, std::string* error) {
  const JsonValue* asf = root.Get("asf");
  if (asf == nullptr || !asf->IsObject()) {
    if (error != nullptr) {
      *error = "document has no \"asf\" section";
    }
    return false;
  }
  const JsonValue* jspans = asf->Get("spans");
  const JsonValue* jtxs = asf->Get("txEvents");
  if (jspans == nullptr || !jspans->IsArray() || jtxs == nullptr || !jtxs->IsArray()) {
    if (error != nullptr) {
      *error = "\"asf\" section lacks spans/txEvents arrays";
    }
    return false;
  }
  spans->clear();
  spans->reserve(jspans->size());
  for (const JsonValue& row : jspans->items()) {
    if (!row.IsArray() || row.size() != 5) {
      if (error != nullptr) {
        *error = "malformed span entry (want [start, cycles, core, category, attempt])";
      }
      return false;
    }
    asfsim::CycleSpan s;
    s.start = row.at(0).AsUInt();
    s.cycles = row.at(1).AsUInt();
    s.core = static_cast<uint32_t>(row.at(2).AsUInt());
    s.category = static_cast<asfsim::CycleCategory>(row.at(3).AsUInt());
    s.attempt = row.at(4).AsUInt();
    spans->push_back(s);
  }
  tx_events->clear();
  tx_events->reserve(jtxs->size());
  for (const JsonValue& row : jtxs->items()) {
    if (!row.IsArray() || row.size() != 9) {
      if (error != nullptr) {
        *error =
            "malformed txEvent entry (want [cycle, core, kind, mode, cause, "
            "attempt, retry, arg0, arg1])";
      }
      return false;
    }
    TxEvent ev;
    ev.cycle = row.at(0).AsUInt();
    ev.core = static_cast<uint32_t>(row.at(1).AsUInt());
    ev.kind = static_cast<TxEventKind>(row.at(2).AsUInt());
    ev.mode = static_cast<TxMode>(row.at(3).AsUInt());
    ev.cause = static_cast<asfcommon::AbortCause>(row.at(4).AsUInt());
    ev.attempt = row.at(5).AsUInt();
    ev.retry = static_cast<uint32_t>(row.at(6).AsUInt());
    ev.arg0 = row.at(7).AsUInt();
    ev.arg1 = row.at(8).AsUInt();
    tx_events->push_back(ev);
  }
  return true;
}

bool WriteTextFile(const std::string& path, std::string_view content, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  size_t written = content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  int rc = std::fclose(f);
  if (written != content.size() || rc != 0) {
    if (error != nullptr) {
      *error = "short write to " + path;
    }
    return false;
  }
  return true;
}

bool ReadTextFile(const std::string& path, std::string* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok && error != nullptr) {
    *error = "read error on " + path;
  }
  return ok;
}

}  // namespace asfobs
