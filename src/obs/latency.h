// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Per-transaction tail-latency accounting over the lifecycle-event stream.
//
// A "block" is one atomic section as the workload sees it: from the first
// kTxBegin on a core (with no block already open there) to the kTxCommit that
// retires it, spanning every aborted attempt, backoff window, and fallback
// transition in between. LatencyRecorder folds each completed block into
// fixed-layout exponential-bucket statistics with a per-attempt cycle
// decomposition:
//
//   total   = commit cycle - first begin cycle          (block latency)
//   wasted  = cycles inside attempts that later aborted
//   backoff = cycles inside contention-management backoff windows
//   serial  = cycles inside serial-irrevocable attempts
//   speculative work = total - wasted - backoff - serial (derived)
//
// The bucket layout is a compile-time constant (not per-instance bounds), so
// stats from independent runs merge exactly and two recorders fed the same
// event sequence agree bit for bit. That is the offline-analysis invariant:
// replaying an exported trace through ComputeLatencyFromEvents() reproduces
// the live run's percentiles exactly (tests assert this).
//
// Like every TxEventSink here, the recorder is host-side only: it never
// touches simulated state, so enabling it cannot perturb the simulation.
#ifndef SRC_OBS_LATENCY_H_
#define SRC_OBS_LATENCY_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/obs/tx_event.h"

namespace asfobs {

class JsonWriter;

// Mergeable fixed-layout latency statistics for one (runtime, outcome) key or
// an aggregate. Value semantics; operator== is memberwise, which is what the
// online-vs-offline equality tests compare.
struct LatencyStats {
  // Bucket i counts blocks with total latency <= kFirstBound << i simulated
  // cycles; the final slot is the overflow bucket. 64 << 25 ≈ 2.1e9 cycles
  // comfortably covers any feasible single block.
  static constexpr uint64_t kFirstBound = 64;
  static constexpr size_t kNumBounds = 26;
  static constexpr size_t kNumBuckets = kNumBounds + 1;
  static constexpr size_t kNumModes = static_cast<size_t>(TxMode::kNumModes);

  // Bound of bucket i (UINT64_MAX for the overflow bucket).
  static uint64_t BucketBound(size_t i) {
    return i < kNumBounds ? kFirstBound << i : UINT64_MAX;
  }

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;  // Completed blocks.
  uint64_t sum = 0;    // Total block cycles.
  uint64_t min = 0;    // Valid only when count != 0.
  uint64_t max = 0;

  // Decomposition totals over all completed blocks (cycles).
  uint64_t wasted_cycles = 0;
  uint64_t backoff_cycles = 0;
  uint64_t serial_cycles = 0;
  uint64_t aborted_attempts = 0;
  uint64_t clean_blocks = 0;  // Committed on their first attempt.
  uint64_t retried_blocks = 0;
  std::array<uint64_t, kNumModes> commits_by_mode{};

  // Folds one completed block's total latency into the distribution; the
  // decomposition totals are accumulated directly by the recorder.
  void Observe(uint64_t total);
  void Merge(const LatencyStats& other);

  // Same contract as Histogram::Percentile: 0 when empty; the bound of the
  // bucket holding rank round(p/100 * count) clamped to [1, count]; max()
  // (the largest block actually seen) when the rank lands in overflow.
  uint64_t Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
  // Wasted cycles as a fraction of all block cycles (0 when sum == 0).
  double WastedRatio() const {
    return sum == 0 ? 0.0 : static_cast<double>(wasted_cycles) / static_cast<double>(sum);
  }

  bool operator==(const LatencyStats&) const = default;
};

// Serializes one LatencyStats as the JSON object used by the bench "latency"
// sections and harness reports (and validated by tools/json_check): counts,
// decomposition, p50/p90/p99/p999, and the sparse bucket array.
void WriteLatencyJson(JsonWriter& w, const LatencyStats& s);

// Event-stream consumer producing an aggregate LatencyStats plus one keyed
// entry per (mode, clean|retried). Chainable: every event is forwarded to
// the next sink, so recorders slot into the existing obs-session plumbing
// without displacing the user's sink.
class LatencyRecorder final : public TxEventSink {
 public:
  explicit LatencyRecorder(TxEventSink* next = nullptr) : next_(next) {}

  void SetNext(TxEventSink* next) { next_ = next; }

  void OnTxEvent(const TxEvent& ev) override;
  void OnMeasurementReset() override;

  const LatencyStats& stats() const { return stats_; }
  const LatencyStats& keyed(TxMode mode, bool retried) const {
    return keyed_[KeyIndex(mode, retried)];
  }

 private:
  static size_t KeyIndex(TxMode mode, bool retried) {
    return static_cast<size_t>(mode) * 2 + (retried ? 1 : 0);
  }

  // Open-block accounting for one core.
  struct CoreState {
    bool open = false;
    uint64_t block_start = 0;
    uint64_t attempt_start = 0;
    TxMode attempt_mode = TxMode::kNone;
    uint64_t wasted = 0;
    uint64_t backoff = 0;
    uint64_t serial = 0;
    uint64_t aborted = 0;
  };

  CoreState& StateFor(uint32_t core);

  std::vector<CoreState> cores_;
  LatencyStats stats_;
  std::array<LatencyStats, LatencyStats::kNumModes * 2> keyed_{};
  TxEventSink* next_ = nullptr;
};

// Replays an event log (e.g. the "asf" section of an exported trace) through
// a fresh recorder and returns its aggregate — bit-identical to the stats a
// live recorder produced from the same events.
LatencyStats ComputeLatencyFromEvents(const std::vector<TxEvent>& events);

// Full replay when the keyed breakdown is needed too.
void ReplayLatency(const std::vector<TxEvent>& events, LatencyRecorder* out);

}  // namespace asfobs

#endif  // SRC_OBS_LATENCY_H_
