// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/obs/tx_event.h"

namespace asfobs {

const char* TxEventKindName(TxEventKind k) {
  switch (k) {
    case TxEventKind::kTxBegin:
      return "tx-begin";
    case TxEventKind::kTxCommit:
      return "tx-commit";
    case TxEventKind::kTxAbort:
      return "tx-abort";
    case TxEventKind::kFallbackTransition:
      return "fallback";
    case TxEventKind::kBackoffStart:
      return "backoff-start";
    case TxEventKind::kBackoffEnd:
      return "backoff-end";
    case TxEventKind::kFaultInjected:
      return "fault-injected";
    case TxEventKind::kConflictEdge:
      return "conflict-edge";
    case TxEventKind::kNumKinds:
      break;
  }
  return "invalid";
}

const char* TxModeName(TxMode m) {
  switch (m) {
    case TxMode::kNone:
      return "none";
    case TxMode::kHardware:
      return "hw";
    case TxMode::kSerial:
      return "serial";
    case TxMode::kStm:
      return "stm";
    case TxMode::kElision:
      return "elision";
    case TxMode::kLock:
      return "lock";
    case TxMode::kNumModes:
      break;
  }
  return "invalid";
}

}  // namespace asfobs
