// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/harness/report.h"

#include "src/sim/core.h"

namespace harness {

using asfobs::JsonWriter;

void WriteTxStats(JsonWriter& w, const asftm::TxStats& tm) {
  w.BeginObject();
  w.KV("txStarted", tm.tx_started);
  w.KV("hwAttempts", tm.hw_attempts);
  w.KV("stmAttempts", tm.stm_attempts);
  w.KV("serialAttempts", tm.serial_attempts);
  w.KV("hwCommits", tm.hw_commits);
  w.KV("serialCommits", tm.serial_commits);
  w.KV("stmCommits", tm.stm_commits);
  w.KV("seqCommits", tm.seq_commits);
  w.KV("commits", tm.Commits());
  w.KV("totalAttempts", tm.TotalAttempts());
  w.KV("totalAborts", tm.TotalAborts());
  w.KV("abortRatePercent", tm.AbortRatePercent());
  w.KV("backoffCycles", tm.backoff_cycles);
  w.Key("aborts");
  w.BeginObject();
  for (size_t i = 1; i < tm.aborts.size(); ++i) {
    if (tm.aborts[i] != 0) {
      w.KV(asfcommon::AbortCauseName(static_cast<asfcommon::AbortCause>(i)), tm.aborts[i]);
    }
  }
  w.EndObject();
  w.EndObject();
}

void WriteBreakdown(JsonWriter& w, const CycleBreakdown& breakdown) {
  w.BeginObject();
  for (size_t i = 0; i < breakdown.cycles.size(); ++i) {
    w.KV(asfsim::CycleCategoryName(static_cast<asfsim::CycleCategory>(i)), breakdown.cycles[i]);
  }
  w.KV("total", breakdown.Total());
  w.EndObject();
}

void WriteIntsetReport(JsonWriter& w, const IntsetConfig& cfg, const IntsetResult& r) {
  w.BeginObject();
  w.Key("config");
  w.BeginObject();
  w.KV("structure", cfg.structure);
  w.KV("keyRange", cfg.key_range);
  w.KV("updatePct", cfg.update_pct);
  w.KV("threads", cfg.threads);
  w.KV("opsPerThread", cfg.ops_per_thread);
  w.KV("runtime", RuntimeKindName(cfg.runtime));
  w.KV("variant", cfg.variant.Name());
  w.KV("seed", cfg.seed);
  w.KV("timerInterrupts", cfg.timer_interrupts);
  w.EndObject();
  w.Key("result");
  w.BeginObject();
  w.KV("committedTx", r.committed_tx);
  w.KV("measureCycles", r.measure_cycles);
  w.KV("txPerUs", r.tx_per_us);
  w.Key("tm");
  WriteTxStats(w, r.tm);
  w.Key("breakdown");
  WriteBreakdown(w, r.breakdown);
  if (cfg.collect_latency) {
    w.Key("latency");
    asfobs::WriteLatencyJson(w, r.latency);
    w.Key("heatmap");
    asfobs::WriteHeatmapJson(w, r.heatmap, /*top_k=*/10);
  }
  w.EndObject();
  w.EndObject();
}

void WriteStampReport(JsonWriter& w, const std::string& app, const StampConfig& cfg,
                      const StampResult& r) {
  w.BeginObject();
  w.Key("config");
  w.BeginObject();
  w.KV("app", app);
  w.KV("runtime", RuntimeKindName(cfg.runtime));
  w.KV("variant", cfg.variant.Name());
  w.KV("threads", cfg.threads);
  w.KV("scale", cfg.scale);
  w.KV("seed", cfg.seed);
  w.KV("timerInterrupts", cfg.timer_interrupts);
  w.EndObject();
  w.Key("result");
  w.BeginObject();
  w.KV("execCycles", r.exec_cycles);
  w.KV("execMs", r.exec_ms);
  w.KV("workCycles", r.work_cycles);
  w.KV("validation", r.validation);
  w.KV("totalInjected", r.total_injected);
  w.Key("tm");
  WriteTxStats(w, r.tm);
  w.Key("breakdown");
  WriteBreakdown(w, r.breakdown);
  if (cfg.collect_latency) {
    w.Key("latency");
    asfobs::WriteLatencyJson(w, r.latency);
    w.Key("heatmap");
    asfobs::WriteHeatmapJson(w, r.heatmap, /*top_k=*/10);
  }
  w.EndObject();
  w.EndObject();
}

std::string IntsetReportJson(const IntsetConfig& cfg, const IntsetResult& r) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/true);
  WriteIntsetReport(w, cfg, r);
  out.push_back('\n');
  return out;
}

std::string StampReportJson(const std::string& app, const StampConfig& cfg,
                            const StampResult& r) {
  std::string out;
  JsonWriter w(&out, /*pretty=*/true);
  WriteStampReport(w, app, cfg, r);
  out.push_back('\n');
  return out;
}

}  // namespace harness
