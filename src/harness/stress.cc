// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/harness/stress.h"

#include <sstream>
#include <unordered_set>
#include <vector>

#include "src/common/random.h"
#include "src/harness/run_threads.h"
#include "src/sim/sync.h"

namespace harness {

using asfcommon::AbortCause;
using asfsim::SimThread;
using asfsim::Task;
using asftm::Tx;

namespace {

uint64_t Fnv1a(const std::vector<uint64_t>& keys) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint64_t k : keys) {
    for (int b = 0; b < 8; ++b) {
      h ^= (k >> (8 * b)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

}  // namespace

std::string StressResult::Digest() const {
  std::ostringstream os;
  const asftm::TxStats& tm = intset.tm;
  os << "commits=" << tm.Commits() << ";hw=" << tm.hw_commits << ";stm=" << tm.stm_commits
     << ";serial=" << tm.serial_commits << ";seq=" << tm.seq_commits
     << ";attempts=" << tm.TotalAttempts() << ";aborts=" << tm.TotalAborts();
  for (size_t c = 1; c < tm.aborts.size(); ++c) {
    if (tm.aborts[c] != 0) {
      os << ";abort." << asfcommon::AbortCauseName(static_cast<AbortCause>(c)) << "="
         << tm.aborts[c];
    }
  }
  os << ";injected=" << total_injected;
  for (size_t c = 1; c < injected.size(); ++c) {
    if (injected[c] != 0) {
      os << ";inj." << asfcommon::AbortCauseName(static_cast<AbortCause>(c)) << "="
         << injected[c];
    }
  }
  os << ";backoff_cycles=" << tm.backoff_cycles << ";measure_cycles=" << intset.measure_cycles
     << ";final_cycle=" << final_cycle << ";watchdog=" << (watchdog_fired ? 1 : 0)
     << ";verdict=" << static_cast<int>(verdict) << ";set_size=" << set_size << ";set_hash=0x"
     << std::hex << set_hash;
  return os.str();
}

StressResult RunStress(const StressConfig& cfg) {
  const IntsetConfig& ic = cfg.intset;
  ASF_CHECK(ic.threads >= 1 && ic.threads <= 8);
  asf::MachineParams mp = PaperMachineParams(ic.variant, ic.threads, ic.timer_interrupts);
  mp.slack_cycles = ic.slack_cycles;
  mp.slack_jobs = ic.slack_jobs;
  asf::Machine m(mp);

  asffault::FaultInjector injector(cfg.schedule, m.scheduler().num_cores());
  m.SetFaultInjector(&injector);
  asffault::Watchdog watchdog(cfg.watchdog);
  // Sink chain: watchdog -> (latency -> heatmap ->) caller's observers. The
  // watchdog stays first so liveness monitoring sees the raw stream.
  asfobs::LatencyRecorder latency_rec;
  asfobs::HeatmapRecorder heatmap_rec;
  if (ic.collect_latency) {
    watchdog.set_next(&latency_rec);
    latency_rec.SetNext(&heatmap_rec);
    heatmap_rec.SetNext(ic.obs.tx_sink);
  } else {
    watchdog.set_next(ic.obs.tx_sink);  // Observers see the full stream too.
  }
  m.SetTxSink(&watchdog);
  if (ic.obs.tracer != nullptr) {
    m.scheduler().SetTracer(ic.obs.tracer);
  }

  auto set = MakeIntset(ic.structure, &m.arena());
  auto rt = MakeRuntime(ic.runtime, m, ic);
  PretouchIntset(m, ic.structure, set.get());

  const uint64_t initial = ic.initial_size != 0 ? ic.initial_size : ic.key_range / 2;
  ASF_CHECK(initial <= ic.key_range);
  std::vector<uint64_t> init_keys;
  {
    asfcommon::Rng rng(ic.seed * 31 + 17);
    std::unordered_set<uint64_t> chosen;
    while (chosen.size() < initial) {
      chosen.insert(rng.NextBelow(ic.key_range) + 1);
    }
    init_keys.assign(chosen.begin(), chosen.end());
  }

  // Host-side op log: net successful inserts minus successful removes per
  // key, recorded per thread from the committed bodies. The simulator's
  // cooperative scheduler serializes host code, so plain vectors suffice.
  std::vector<std::vector<int64_t>> net(ic.threads,
                                        std::vector<int64_t>(ic.key_range + 1, 0));

  asfsim::SimBarrier barrier_a(ic.threads);
  asfsim::SimBarrier barrier_b(ic.threads);
  uint64_t measure_start = 0;
  StressResult result;

  RunThreads(m, ic.threads, [&](SimThread& t, uint32_t tid) -> Task<void> {
    // ---- Population phase (thread 0; dropped at the barrier) ----
    if (tid == 0) {
      for (uint64_t key : init_keys) {
        co_await rt->Atomic(t, [&](Tx& tx) -> Task<void> {
          co_await set->Insert(tx, key);
        });
      }
    }
    co_await barrier_a.Arrive(t);
    if (tid == 0) {
      rt->ResetStats();
      for (uint32_t c = 0; c < m.scheduler().num_cores(); ++c) {
        m.scheduler().core(c).ResetStats();
        m.context(c).ResetStats();
      }
      m.mem().ResetStats();
      m.conflict_directory().ResetStats();
      // The injection counters and the watchdog reset with the statistics;
      // the watchdog forwards the reset to the chained observer sink.
      injector.ResetCounts();
      watchdog.OnMeasurementReset();
      if (ic.obs.tracer != nullptr) {
        ic.obs.tracer->Clear();
      }
      measure_start = t.core().clock();
    }
    co_await barrier_b.Arrive(t);

    // ---- Measurement phase under injected faults ----
    asfcommon::Rng rng(ic.seed * 1000003 + tid);
    const uint32_t half_upd = ic.update_pct / 2;
    for (uint64_t i = 0; i < ic.ops_per_thread; ++i) {
      uint64_t key = rng.NextBelow(ic.key_range) + 1;
      uint32_t dice = static_cast<uint32_t>(rng.NextBelow(100));
      if (dice < half_upd) {
        // `ok` is overwritten by every retry, so it ends up holding the
        // committed attempt's outcome.
        bool ok = false;
        co_await rt->Atomic(t, kSiteInsert, [&](Tx& tx) -> Task<void> {
          ok = co_await set->Insert(tx, key);
        });
        if (ok) {
          ++net[tid][key];
        }
      } else if (dice < ic.update_pct) {
        bool ok = false;
        co_await rt->Atomic(t, kSiteRemove, [&](Tx& tx) -> Task<void> {
          ok = co_await set->Remove(tx, key);
        });
        if (ok) {
          --net[tid][key];
        }
      } else {
        co_await rt->Atomic(t, kSiteContains, [&](Tx& tx) -> Task<void> {
          co_await set->Contains(tx, key);
        });
      }
    }
  });

  result.final_cycle = m.scheduler().MaxCycle();
  watchdog.Finalize(result.final_cycle);
  result.watchdog_fired = watchdog.fired();
  result.verdict = watchdog.verdict();
  result.watchdog_diagnosis = watchdog.diagnosis();
  result.progress = watchdog.progress();

  result.intset.measure_cycles = result.final_cycle - measure_start;
  result.intset.tm = rt->TotalStats();
  result.intset.committed_tx = result.intset.tm.Commits();
  if (result.intset.measure_cycles > 0) {
    result.intset.tx_per_us = static_cast<double>(result.intset.committed_tx) *
                              static_cast<double>(asfcommon::kCyclesPerMicrosecond) /
                              static_cast<double>(result.intset.measure_cycles);
  }
  for (uint32_t c = 0; c < m.scheduler().num_cores(); ++c) {
    for (size_t cat = 0; cat < result.intset.breakdown.cycles.size(); ++cat) {
      result.intset.breakdown.cycles[cat] +=
          m.scheduler().core(c).CategoryCycles(static_cast<asfsim::CycleCategory>(cat));
    }
    const auto& cs = m.context(c).stats();
    result.intset.asf.speculates += cs.speculates;
    result.intset.asf.commits += cs.commits;
    for (size_t a = 0; a < cs.aborts.size(); ++a) {
      result.intset.asf.aborts[a] += cs.aborts[a];
    }
  }
  for (size_t c = 0; c < result.injected.size(); ++c) {
    result.injected[c] = injector.injected(static_cast<AbortCause>(c));
  }
  result.total_injected = injector.total_injected();
  if (ic.collect_latency) {
    result.intset.latency = latency_rec.stats();
    result.intset.heatmap = heatmap_rec.stats();
  }

  std::ostringstream viol;
  result.intset.invariant_violation = set->CheckInvariants();
  if (!result.intset.invariant_violation.empty()) {
    viol << "structure: " << result.intset.invariant_violation << "; ";
  }

  // Statistics conservation: every attempt committed or aborted exactly once.
  const asftm::TxStats& tm = result.intset.tm;
  if (tm.TotalAttempts() != tm.Commits() + tm.TotalAborts()) {
    viol << "stats conservation: attempts=" << tm.TotalAttempts()
         << " != commits=" << tm.Commits() << " + aborts=" << tm.TotalAborts() << "; ";
  }

  // Membership conservation against the committed-op log.
  std::vector<uint64_t> snapshot = set->Snapshot();
  result.set_size = snapshot.size();
  result.set_hash = Fnv1a(snapshot);
  if (cfg.verify_membership) {
    std::vector<int64_t> expect(ic.key_range + 1, 0);
    for (uint64_t key : init_keys) {
      expect[key] = 1;
    }
    for (uint32_t tid = 0; tid < ic.threads; ++tid) {
      for (uint64_t key = 1; key <= ic.key_range; ++key) {
        expect[key] += net[tid][key];
      }
    }
    std::vector<uint8_t> got(ic.key_range + 1, 0);
    for (uint64_t key : snapshot) {
      if (key == 0 || key > ic.key_range) {
        viol << "membership: key " << key << " outside [1," << ic.key_range << "]; ";
      } else {
        got[key] = 1;
      }
    }
    for (uint64_t key = 1; key <= ic.key_range; ++key) {
      if (expect[key] < 0 || expect[key] > 1) {
        viol << "membership: key " << key << " has impossible net count " << expect[key]
             << " (duplicated or lost update); ";
        break;
      }
      if (expect[key] != got[key]) {
        viol << "membership: key " << key << " expected " << expect[key] << " got "
             << static_cast<int>(got[key]) << "; ";
        break;
      }
    }
  }
  result.invariant_violation = viol.str();
  return result;
}

}  // namespace harness
