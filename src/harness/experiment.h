// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Experiment driver for the IntegerSet microbenchmarks, reproducing the
// methodology of the paper's Section 5: a population phase (the paper
// fast-forwards initialization), a statistics reset at the measurement
// barrier, then a fixed number of random operations per thread; throughput
// is reported in transactions per microsecond at the simulated 2.2 GHz.
#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/asf/machine.h"
#include "src/common/abort_cause.h"
#include "src/intset/int_set.h"
#include "src/obs/heatmap.h"
#include "src/obs/latency.h"
#include "src/obs/metrics.h"
#include "src/obs/tx_event.h"
#include "src/sim/trace.h"
#include "src/tm/tm_api.h"

namespace harness {

// Optional host-side observers for a run. The harness installs them on the
// machine before the workload starts and resets them at the measurement
// barrier (atomically with the statistics reset, so they see exactly the
// measured window). Both are borrowed, not owned, and cost zero simulated
// cycles; leave null to disable.
struct ObsHooks {
  asfsim::Tracer* tracer = nullptr;        // Memory ops + cycle spans.
  asfobs::TxEventSink* tx_sink = nullptr;  // Transaction lifecycle events.
  // Conflict-directory telemetry is folded into this registry at the end of
  // the run (asfobs::RecordConflictDirectory, "conflict_directory.*").
  asfobs::MetricsRegistry* metrics = nullptr;
};

enum class RuntimeKind {
  kAsfTm,        // ASF-TM on the configured ASF variant.
  kTinyStm,      // TinySTM write-through (baseline).
  kSequential,   // Uninstrumented, single thread only.
  kGlobalLock,   // Single global lock (reference, ablations).
  kPhasedTm,     // PhasedTM-style hardware/software phase hybrid.
  kLockElision,  // One elidable global lock (ElisionTm).
};

const char* RuntimeKindName(RuntimeKind k);

// Static site ids of the intset workload's atomic blocks, forwarded to
// site-keyed contention policies via TmRuntime::Atomic. The population
// phase stays site 0 (unattributed warm-up).
inline constexpr uint32_t kSiteInsert = 1;
inline constexpr uint32_t kSiteRemove = 2;
inline constexpr uint32_t kSiteContains = 3;

struct IntsetConfig {
  std::string structure = "list";  // list | list-er | skip | rb | hash.
  uint64_t key_range = 1024;
  uint32_t update_pct = 20;  // Percentage of update operations (split 50/50
                             // between inserts and removes); rest are lookups.
  uint32_t threads = 8;
  uint64_t ops_per_thread = 2000;
  uint64_t initial_size = 0;  // 0 => key_range / 2 (the paper's default).
  RuntimeKind runtime = RuntimeKind::kAsfTm;
  asf::AsfVariant variant = asf::AsfVariant::Llb256();
  uint64_t seed = 1;
  bool timer_interrupts = true;
  // ASF-TM policy overrides (ablations); negative = default.
  int capacity_goes_serial = -1;
  int max_contention_retries = -1;
  // Extra per-barrier ABI dispatch instructions (models dynamic linking /
  // no-LTO; -1 = default inlined cost).
  int barrier_instructions = -1;
  // Contention-policy spec for asftm::MakeContentionPolicy (e.g.
  // "exp-backoff:retries=4", "serialize", "adaptive"); empty = the runtime's
  // built-in default. Ignored by kSequential / kGlobalLock.
  std::string contention_policy;
  // Bounded-slack quantum execution (MachineParams::slack_cycles; --slack N
  // on every bench). 0 = the exact single-event loop. Any value must produce
  // bit-identical results; perf_selfcheck --slack-check enforces this.
  uint64_t slack_cycles = 0;
  // Host-parallel slack planning (MachineParams::slack_jobs; --slack-jobs N
  // on every bench). 0/1 = the serial slack engine; a no-op unless
  // slack_cycles is set. Bit-identical for every value (perf_selfcheck
  // --slack-par-check).
  uint32_t slack_jobs = 1;
  ObsHooks obs;
  // Collect per-transaction latency percentiles and the hot-line heatmap for
  // this run (host-side recorders chained in front of obs.tx_sink; fills
  // IntsetResult::latency/heatmap). Off by default: enabling it must not —
  // and, by the obs-on/obs-off digest tests, does not — perturb simulated
  // execution.
  bool collect_latency = false;
};

struct CycleBreakdown {
  // Indexed by asfsim::CycleCategory.
  std::array<uint64_t, 6> cycles{};

  uint64_t Total() const {
    uint64_t n = 0;
    for (uint64_t v : cycles) {
      n += v;
    }
    return n;
  }
  uint64_t At(asfsim::CycleCategory c) const { return cycles[static_cast<size_t>(c)]; }
};

// Host-side simulator-performance counters for a whole run (zero simulated
// cost; never part of result digests). Reported by bench/perf_selfcheck to
// show how often the scheduler's next-event slot and the memory system's
// last-line/last-page memoization fire.
struct HostPerf {
  uint64_t wakes = 0;          // Scheduler wakes scheduled.
  uint64_t fast_wakes = 0;     // Wakes that took the next-event slot.
  uint64_t inline_wakes = 0;   // Slot wakes consumed at the suspension point.
  uint64_t mem_accesses = 0;   // MemorySystem::Access calls.
  uint64_t mem_line_hits = 0;  // Full memo fast path (TLB+directory skipped).
  uint64_t mem_page_hits = 0;  // Translation memo only.
  // Conflict-directory telemetry (asf::ConflictDirectory::Stats).
  uint64_t dir_resolutions = 0;     // Conflict-resolution invocations.
  uint64_t dir_gate_skips = 0;      // Skipped: no other active speculator.
  uint64_t dir_solo_fast_paths = 0; // Single-speculator short circuit taken.
  uint64_t dir_probes = 0;          // Directory line lookups.
  uint64_t dir_probe_hits = 0;      // Lookups that found a record.
  // Bounded-slack quantum telemetry (asfsim::SlackStats; zero when the run
  // used the exact loop, i.e. slack_cycles == 0).
  uint64_t slack_quanta = 0;         // Quantum windows opened.
  uint64_t slack_solo_quanta = 0;    // Windows with no other in-window event.
  uint64_t slack_torn_quanta = 0;    // Demoted by a cross-thread wake.
  uint64_t slack_conflict_quanta = 0;// Demoted by cross-core spec. overlap.
  uint64_t slack_batched = 0;        // Events consumed at the suspension point.
  uint64_t slack_journal_lines = 0;  // Dirty lines journaled across quanta.
  // Host-parallel slack planning telemetry (sharded backend; zero unless
  // slack_jobs > 1 — see src/sim/slack_pool.h).
  uint64_t slack_plan_forks = 0;       // Fork/join plan epochs on the pool.
  uint64_t slack_plan_events = 0;      // Events snapshotted into plans.
  uint64_t slack_sharded_windows = 0;  // Windows dispatched via merge.
  uint64_t slack_overlay_resolves = 0; // Merges served by the overlay alone.
  std::vector<uint64_t> slack_worker_planned;  // Per-worker occupancy.
};

struct IntsetResult {
  uint64_t committed_tx = 0;
  uint64_t measure_cycles = 0;  // Simulated cycles of the measurement phase.
  double tx_per_us = 0.0;
  asftm::TxStats tm;               // Aggregated over threads (measurement only).
  asf::AsfContextStats asf;        // Aggregated ASF-level counters.
  CycleBreakdown breakdown;        // Aggregated per-category cycles.
  HostPerf host;                   // Host-side fast-path telemetry.
  std::string invariant_violation; // Empty when the structure checked out.
  // Filled only when IntsetConfig::collect_latency is set.
  asfobs::LatencyStats latency;    // Block-latency distribution (measured window).
  asfobs::HeatmapStats heatmap;    // Hot-line contention counts.
};

// Builds a TM runtime of the requested kind on `m` (applying the config's
// policy overrides where the kind supports them).
std::unique_ptr<asftm::TmRuntime> MakeRuntime(RuntimeKind kind, asf::Machine& m,
                                              const IntsetConfig& cfg);

// Builds an IntegerSet of the requested structure ("list", "list-er",
// "skip", "rb", "hash") on `arena`; CHECK-fails on unknown names.
std::unique_ptr<intset::IntSet> MakeIntset(const std::string& structure,
                                           asfcommon::SimArena* arena);

// Pretouches the structure's resident image (sentinels, bucket tables) the
// way the paper's fast-forwarded initialization would leave it.
void PretouchIntset(asf::Machine& m, const std::string& structure, intset::IntSet* set);

// Builds the machine parameters used by all experiments (paper Sec. 5
// configuration; 8 cores, Barcelona-like hierarchy).
asf::MachineParams PaperMachineParams(const asf::AsfVariant& variant, uint32_t threads,
                                      bool timer_interrupts);

// Runs one IntegerSet configuration and returns its measurements.
IntsetResult RunIntset(const IntsetConfig& cfg);

// Same, but on explicitly supplied machine parameters (cache-geometry
// ablations and similar sweeps).
IntsetResult RunIntsetOnParams(const IntsetConfig& cfg, const asf::MachineParams& machine_params);

}  // namespace harness

#endif  // SRC_HARNESS_EXPERIMENT_H_
