// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Driver for the STAMP benchmark reproductions (paper Figures 3, 4 and 6):
// builds the machine and TM runtime, runs the app's in-simulation setup,
// resets statistics at the measurement barrier, executes the parallel
// region, and reports execution time plus transaction statistics.
#ifndef SRC_HARNESS_STAMP_DRIVER_H_
#define SRC_HARNESS_STAMP_DRIVER_H_

#include <array>
#include <memory>
#include <string>

#include "src/fault/fault_schedule.h"
#include "src/harness/experiment.h"
#include "src/stamp/stamp_app.h"

namespace harness {

struct StampConfig {
  RuntimeKind runtime = RuntimeKind::kAsfTm;
  asf::AsfVariant variant = asf::AsfVariant::Llb256();
  uint32_t threads = 8;
  uint32_t scale = 1;  // Input-size multiplier (1 = default sim-scale).
  uint64_t seed = 42;
  bool timer_interrupts = true;
  // Adverse-event schedule (src/fault); empty = no injection. Injected
  // faults emit kFaultInjected events, so latency histograms capture the
  // fault-induced tails.
  asffault::FaultSchedule schedule;
  ObsHooks obs;
  // Collect latency percentiles + hot-line heatmap (see IntsetConfig).
  bool collect_latency = false;
  // Bounded-slack quantum execution (see IntsetConfig::slack_cycles).
  uint64_t slack_cycles = 0;
  // Host-parallel slack planning (see IntsetConfig::slack_jobs).
  uint32_t slack_jobs = 1;
};

struct StampResult {
  uint64_t exec_cycles = 0;  // Measured parallel-region cycles.
  double exec_ms = 0.0;      // At the simulated 2.2 GHz.
  asftm::TxStats tm;
  CycleBreakdown breakdown;
  asfmem::MemStats mem;      // Aggregated over cores (measurement only).
  uint64_t work_cycles = 0;  // Pure instruction-stream cycles (all cores).
  std::string validation;    // Empty when the app's output checked out.
  // Injection counters (measured window), keyed by masqueraded cause.
  std::array<uint64_t, static_cast<size_t>(asfcommon::AbortCause::kNumCauses)> injected{};
  uint64_t total_injected = 0;
  // Filled only when StampConfig::collect_latency is set.
  asfobs::LatencyStats latency;
  asfobs::HeatmapStats heatmap;
};

// Factory for a fresh app instance (apps are single-use).
using StampAppFactory = std::unique_ptr<stamp::StampApp> (*)();

// Builds the app by `name`: genome, intruder, kmeans-low, kmeans-high,
// labyrinth, ssca2, vacation-low, vacation-high.
std::unique_ptr<stamp::StampApp> MakeStampApp(const std::string& name);

// All app names, in the paper's Figure 4 panel order.
const std::vector<std::string>& StampAppNames();

StampResult RunStamp(stamp::StampApp& app, const StampConfig& cfg);

}  // namespace harness

#endif  // SRC_HARNESS_STAMP_DRIVER_H_
