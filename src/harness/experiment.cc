// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/harness/experiment.h"

#include <unordered_set>

#include "src/common/random.h"
#include "src/harness/run_threads.h"
#include "src/intset/hash_set.h"
#include "src/intset/linked_list.h"
#include "src/intset/rb_tree.h"
#include "src/intset/skip_list.h"
#include "src/sim/sync.h"
#include "src/tm/asf_tm.h"
#include "src/tm/contention_policy.h"
#include "src/tm/lock_elision.h"
#include "src/tm/phased_tm.h"
#include "src/tm/serial_tm.h"
#include "src/tm/tiny_stm.h"

namespace harness {

using asfsim::SimThread;
using asfsim::Task;
using asftm::Tx;

const char* RuntimeKindName(RuntimeKind k) {
  switch (k) {
    case RuntimeKind::kAsfTm:
      return "ASF-TM";
    case RuntimeKind::kTinyStm:
      return "TinySTM";
    case RuntimeKind::kSequential:
      return "Sequential";
    case RuntimeKind::kGlobalLock:
      return "GlobalLock";
    case RuntimeKind::kPhasedTm:
      return "PhasedTM";
    case RuntimeKind::kLockElision:
      return "LockElision";
  }
  return "invalid";
}

namespace {

// Builds the configured contention policy, or null for the runtime default.
std::shared_ptr<asftm::ContentionPolicy> PolicyFromConfig(const IntsetConfig& cfg,
                                                          uint64_t seed) {
  if (cfg.contention_policy.empty()) {
    return nullptr;
  }
  std::string error;
  auto policy = asftm::MakeContentionPolicy(cfg.contention_policy, seed, &error);
  ASF_CHECK_MSG(policy != nullptr, error.c_str());
  return policy;
}

}  // namespace

asf::MachineParams PaperMachineParams(const asf::AsfVariant& variant, uint32_t threads,
                                      bool timer_interrupts) {
  asf::MachineParams p;
  p.num_cores = threads;
  p.variant = variant;
  p.core.timer_enabled = timer_interrupts;
  return p;
}

std::unique_ptr<asftm::TmRuntime> MakeRuntime(RuntimeKind kind, asf::Machine& m,
                                              const IntsetConfig& cfg) {
  switch (kind) {
    case RuntimeKind::kAsfTm: {
      asftm::AsfTmParams p;
      if (cfg.capacity_goes_serial >= 0) {
        p.capacity_goes_serial = cfg.capacity_goes_serial != 0;
      }
      if (cfg.max_contention_retries >= 0) {
        p.max_contention_retries = static_cast<uint32_t>(cfg.max_contention_retries);
      }
      if (cfg.barrier_instructions >= 0) {
        p.barrier_instructions = static_cast<uint32_t>(cfg.barrier_instructions);
      }
      p.rng_seed = cfg.seed * 0x1234567 + 99;
      p.policy = PolicyFromConfig(cfg, p.rng_seed);
      return std::make_unique<asftm::AsfTm>(m, p);
    }
    case RuntimeKind::kTinyStm: {
      asftm::TinyStmParams p;
      if (cfg.barrier_instructions >= 0) {
        p.load_instructions += static_cast<uint32_t>(cfg.barrier_instructions);
        p.store_instructions += static_cast<uint32_t>(cfg.barrier_instructions);
      }
      p.rng_seed = cfg.seed * 0x7654321 + 7;
      p.policy = PolicyFromConfig(cfg, p.rng_seed);
      return std::make_unique<asftm::TinyStm>(m, p);
    }
    case RuntimeKind::kSequential:
      return std::make_unique<asftm::SequentialTm>(m);
    case RuntimeKind::kGlobalLock:
      return std::make_unique<asftm::GlobalLockTm>(m);
    case RuntimeKind::kPhasedTm: {
      asftm::PhasedTmParams p;
      if (cfg.max_contention_retries >= 0) {
        p.max_contention_retries = static_cast<uint32_t>(cfg.max_contention_retries);
      }
      if (cfg.barrier_instructions >= 0) {
        p.barrier_instructions = static_cast<uint32_t>(cfg.barrier_instructions);
      }
      p.rng_seed = cfg.seed * 0x33331 + 3;
      p.policy = PolicyFromConfig(cfg, p.rng_seed);
      return std::make_unique<asftm::PhasedTm>(m, p);
    }
    case RuntimeKind::kLockElision: {
      asftm::ElisionTmParams p;
      if (cfg.max_contention_retries >= 0) {
        p.lock.max_elision_retries = static_cast<uint32_t>(cfg.max_contention_retries);
      }
      if (cfg.barrier_instructions >= 0) {
        p.barrier_instructions = static_cast<uint32_t>(cfg.barrier_instructions);
      }
      p.lock.rng_seed = cfg.seed * 0x51515 + 5;
      p.lock.policy = PolicyFromConfig(cfg, p.lock.rng_seed);
      return std::make_unique<asftm::ElisionTm>(m, p);
    }
  }
  ASF_CHECK(false);
  return nullptr;
}

std::unique_ptr<intset::IntSet> MakeIntset(const std::string& kind, asfcommon::SimArena* arena) {
  if (kind == "list") {
    return std::make_unique<intset::LinkedList>(false, arena);
  }
  if (kind == "list-er") {
    return std::make_unique<intset::LinkedList>(true, arena);
  }
  if (kind == "skip") {
    return std::make_unique<intset::SkipList>(arena);
  }
  if (kind == "rb") {
    return std::make_unique<intset::RbTree>(arena);
  }
  if (kind == "hash") {
    return std::make_unique<intset::HashSet>(17, arena);
  }
  ASF_CHECK_MSG(false, "unknown intset structure");
  return nullptr;
}

void PretouchIntset(asf::Machine& m, const std::string& kind, intset::IntSet* set) {
  // The paper fast-forwards benchmark initialization; resident images
  // (sentinels, bucket tables) are pretouched. Node pages fault naturally.
  if (kind == "hash") {
    auto* hs = static_cast<intset::HashSet*>(set);
    m.mem().PretouchPages(reinterpret_cast<uint64_t>(hs->table_data()), hs->table_bytes());
  }
}

IntsetResult RunIntset(const IntsetConfig& cfg) {
  return RunIntsetOnParams(cfg, PaperMachineParams(cfg.variant, cfg.threads,
                                                   cfg.timer_interrupts));
}

IntsetResult RunIntsetOnParams(const IntsetConfig& cfg,
                               const asf::MachineParams& machine_params) {
  ASF_CHECK(cfg.threads >= 1 && cfg.threads <= 8);
  asf::MachineParams mp = machine_params;
  mp.slack_cycles = cfg.slack_cycles;
  mp.slack_jobs = cfg.slack_jobs;
  asf::Machine m(mp);
  if (cfg.obs.tracer != nullptr) {
    m.scheduler().SetTracer(cfg.obs.tracer);
  }
  // Latency/heatmap recorders chain in *front* of the caller's sink so both
  // see the identical event stream; with collect_latency off the caller's
  // sink is installed directly, byte-identical to the pre-latency plumbing.
  asfobs::LatencyRecorder latency_rec;
  asfobs::HeatmapRecorder heatmap_rec;
  if (cfg.collect_latency) {
    latency_rec.SetNext(&heatmap_rec);
    heatmap_rec.SetNext(cfg.obs.tx_sink);  // May be null: chain just ends.
    m.SetTxSink(&latency_rec);
  } else if (cfg.obs.tx_sink != nullptr) {
    m.SetTxSink(cfg.obs.tx_sink);
  }
  auto set = MakeIntset(cfg.structure, &m.arena());
  auto rt = MakeRuntime(cfg.runtime, m, cfg);
  PretouchIntset(m, cfg.structure, set.get());
  if (cfg.collect_latency && cfg.structure == "hash") {
    // Named-region attribution for the heatmap: the one resident image the
    // harness can name is the hash bucket array. Lines outside registered
    // regions report "-".
    // Registered arena-relative: conflict-edge events carry arena-relative
    // lines (Machine::ObsLine), so region bounds must live in the same
    // coordinate space.
    auto* hs = static_cast<intset::HashSet*>(set.get());
    heatmap_rec.regions().Register("hash:table",
                                   reinterpret_cast<uint64_t>(hs->table_data()) -
                                       m.arena().base(),
                                   hs->table_bytes());
  }

  const uint64_t initial = cfg.initial_size != 0 ? cfg.initial_size : cfg.key_range / 2;
  ASF_CHECK(initial <= cfg.key_range);

  // Deterministic initial contents: `initial` distinct keys from the range.
  std::vector<uint64_t> init_keys;
  {
    asfcommon::Rng rng(cfg.seed * 31 + 17);
    std::unordered_set<uint64_t> chosen;
    while (chosen.size() < initial) {
      chosen.insert(rng.NextBelow(cfg.key_range) + 1);
    }
    init_keys.assign(chosen.begin(), chosen.end());
  }

  asfsim::SimBarrier barrier_a(cfg.threads);
  asfsim::SimBarrier barrier_b(cfg.threads);
  uint64_t measure_start = 0;
  IntsetResult result;

  RunThreads(m, cfg.threads, [&](SimThread& t, uint32_t tid) -> Task<void> {
    // ---- Population phase (thread 0) ----
    if (tid == 0) {
      for (uint64_t key : init_keys) {
        co_await rt->Atomic(t, [&](Tx& tx) -> Task<void> {
          co_await set->Insert(tx, key);
        });
      }
    }
    co_await barrier_a.Arrive(t);
    if (tid == 0) {
      // Reset all statistics at the measurement barrier (host-side, free).
      rt->ResetStats();
      for (uint32_t c = 0; c < m.scheduler().num_cores(); ++c) {
        m.scheduler().core(c).ResetStats();
        m.context(c).ResetStats();
      }
      m.mem().ResetStats();
      m.conflict_directory().ResetStats();
      // Host-side observers drop warm-up data at the same instant the
      // statistics reset (no co_await between the resets), so the trace
      // covers exactly the measured window.
      if (cfg.obs.tracer != nullptr) {
        cfg.obs.tracer->Clear();
      }
      // Reset whatever sink chain is installed on the machine (latency /
      // heatmap recorders forward the reset to the caller's sink).
      if (m.tx_sink() != nullptr) {
        m.tx_sink()->OnMeasurementReset();
      }
      measure_start = t.core().clock();
    }
    co_await barrier_b.Arrive(t);

    // ---- Measurement phase ----
    // The three operation kinds are distinct static atomic blocks; the site
    // ids (insert=1, remove=2, contains=3) let site-keyed contention
    // policies learn each block's behavior separately. Population above
    // stays site 0 (unattributed warm-up).
    asfcommon::Rng rng(cfg.seed * 1000003 + tid);
    const uint32_t half_upd = cfg.update_pct / 2;
    for (uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
      uint64_t key = rng.NextBelow(cfg.key_range) + 1;
      uint32_t dice = static_cast<uint32_t>(rng.NextBelow(100));
      if (dice < half_upd) {
        co_await rt->Atomic(t, kSiteInsert, [&](Tx& tx) -> Task<void> {
          co_await set->Insert(tx, key);
        });
      } else if (dice < cfg.update_pct) {
        co_await rt->Atomic(t, kSiteRemove, [&](Tx& tx) -> Task<void> {
          co_await set->Remove(tx, key);
        });
      } else {
        co_await rt->Atomic(t, kSiteContains, [&](Tx& tx) -> Task<void> {
          co_await set->Contains(tx, key);
        });
      }
    }
  });

  const uint64_t end_cycle = m.scheduler().MaxCycle();
  result.measure_cycles = end_cycle - measure_start;
  result.tm = rt->TotalStats();
  result.committed_tx = result.tm.Commits();
  if (result.measure_cycles > 0) {
    result.tx_per_us = static_cast<double>(result.committed_tx) *
                       static_cast<double>(asfcommon::kCyclesPerMicrosecond) /
                       static_cast<double>(result.measure_cycles);
  }
  for (uint32_t c = 0; c < m.scheduler().num_cores(); ++c) {
    for (size_t cat = 0; cat < result.breakdown.cycles.size(); ++cat) {
      result.breakdown.cycles[cat] +=
          m.scheduler().core(c).CategoryCycles(static_cast<asfsim::CycleCategory>(cat));
    }
    const auto& cs = m.context(c).stats();
    result.asf.speculates += cs.speculates;
    result.asf.commits += cs.commits;
    for (size_t a = 0; a < cs.aborts.size(); ++a) {
      result.asf.aborts[a] += cs.aborts[a];
    }
  }
  result.host.wakes = m.scheduler().wakes_scheduled();
  result.host.fast_wakes = m.scheduler().fast_wakes();
  result.host.inline_wakes = m.scheduler().inline_wakes();
  const asfmem::MemFastPathStats& fp = m.mem().fast_path_stats();
  result.host.mem_accesses = fp.accesses;
  result.host.mem_line_hits = fp.line_hits;
  result.host.mem_page_hits = fp.page_hits;
  const asfsim::SlackStats& ss = m.scheduler().slack_stats();
  result.host.slack_quanta = ss.quanta;
  result.host.slack_solo_quanta = ss.solo_quanta;
  result.host.slack_torn_quanta = ss.torn_quanta;
  result.host.slack_conflict_quanta = ss.conflict_quanta;
  result.host.slack_batched = ss.batched_events;
  result.host.slack_journal_lines = ss.journal_lines;
  result.host.slack_plan_forks = ss.plan_forks;
  result.host.slack_plan_events = ss.plan_events;
  result.host.slack_sharded_windows = ss.sharded_windows;
  result.host.slack_overlay_resolves = ss.overlay_resolves;
  result.host.slack_worker_planned = ss.worker_planned;
  const asf::ConflictDirectory::Stats& ds = m.conflict_directory().stats();
  result.host.dir_resolutions = ds.resolutions;
  result.host.dir_gate_skips = ds.gate_skips;
  result.host.dir_solo_fast_paths = ds.solo_fast_paths;
  result.host.dir_probes = ds.probes;
  result.host.dir_probe_hits = ds.probe_hits;
  if (cfg.obs.metrics != nullptr) {
    asfobs::RecordConflictDirectory(
        *cfg.obs.metrics, {ds.resolutions, ds.gate_skips, ds.solo_fast_paths, ds.probes,
                           ds.probe_hits});
  }
  if (cfg.collect_latency) {
    result.latency = latency_rec.stats();
    result.heatmap = heatmap_rec.stats();
  }
  result.invariant_violation = set->CheckInvariants();
  ASF_CHECK_MSG(result.invariant_violation.empty(), result.invariant_violation.c_str());
  return result;
}

}  // namespace harness
