// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Host-parallel sweep engine for the experiment grids the paper's figures
// are built from (variants x runtimes x thread counts x seeds).
//
// The simulator itself is strictly single-host-threaded and deterministic
// (src/sim/scheduler.h), so parallelism lives one level up: every sweep job
// owns its own asf::Machine, RNG state, and (if it wants one) ObsSession —
// there is no shared mutable state between jobs (Scheduler::Run enforces
// single-host-thread ownership with an atomic guard). Results land in
// deterministic job-index order regardless of which worker ran which job,
// so a sweep at --jobs N is byte-identical to --jobs 1, which in turn is
// bit-for-bit the old serial loop.
//
// Per-job statistics (TxStats, MetricsRegistry counters) stay per-job until
// the join; merge them afterwards (MergeTxStats below) — never share a
// registry across running jobs.
#ifndef SRC_HARNESS_SWEEP_H_
#define SRC_HARNESS_SWEEP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/stamp_driver.h"
#include "src/harness/stress.h"

namespace harness {

// Default host-parallel job count: std::thread::hardware_concurrency(),
// clamped to at least 1.
uint32_t DefaultJobs();

// Runs fn(0) .. fn(n-1) across up to `jobs` host threads. Jobs are claimed
// from an atomic counter, so distinct indices never run twice and each index
// runs on exactly one thread. With jobs <= 1 (or n <= 1) everything runs
// inline on the calling thread in index order — the serial path spawns no
// threads at all.
void ParallelFor(uint32_t jobs, size_t n, const std::function<void(size_t)>& fn);

// Post-join aggregation of per-job transaction statistics.
asftm::TxStats MergeTxStats(const std::vector<IntsetResult>& results);

// Job pool with deterministic result collection. Usage:
//
//   SweepRunner sweep(opt.jobs);
//   std::vector<size_t> ids;
//   for (const auto& cell : grid) ids.push_back(sweep.SubmitIntset(MakeCfg(cell)));
//   sweep.Run();
//   for (size_t id : ids) Format(sweep.intset(id));
//
// Submit order defines result order; Run() fans the queued jobs out and
// joins before returning. Configs are taken by value at submit time.
class SweepRunner {
 public:
  // jobs == 0 selects DefaultJobs().
  explicit SweepRunner(uint32_t jobs = 0);

  uint32_t jobs() const { return jobs_; }

  // Default bounded-slack quantum applied to every config submitted after
  // this call that did not set one itself (cfg slack_cycles == 0): the one
  // line through which every bench plumbs --slack. Results are bit-identical
  // for every value (see src/sim/slack.h), so this is safe to set
  // unconditionally from the parsed options.
  void SetSlackCycles(uint64_t cycles) { default_slack_cycles_ = cycles; }
  uint64_t slack_cycles() const { return default_slack_cycles_; }

  // Default host-parallel slack planning fan-out applied the same way (cfg
  // slack_jobs <= 1): the one line through which every bench plumbs
  // --slack-jobs. Orthogonal to this runner's own per-(config,seed) `jobs`
  // fan-out — slack jobs parallelize planning *inside* one machine. Also
  // bit-identical for every value (perf_selfcheck --slack-par-check).
  void SetSlackJobs(uint32_t jobs) { default_slack_jobs_ = jobs; }
  uint32_t slack_jobs() const { return default_slack_jobs_; }

  // Each Submit* returns an index into that family's result accessor below.
  // Configs must not carry obs hooks shared with another job; attach
  // observers from inside a custom Submit() job instead (one session per
  // job), or run with jobs() == 1.
  size_t SubmitIntset(const IntsetConfig& cfg);
  size_t SubmitIntsetOnParams(const IntsetConfig& cfg, const asf::MachineParams& params);
  // The app is constructed inside the job (apps are single-use and must be
  // built by the host thread that simulates them).
  size_t SubmitStamp(const std::string& app_name, const StampConfig& cfg);
  size_t SubmitStress(const StressConfig& cfg);
  // Arbitrary job; the callable owns everything it touches.
  size_t Submit(std::function<void()> fn);

  // Runs every queued job (across jobs() host threads) and joins. The queue
  // is cleared; results stay until the next Run() batch is submitted.
  void Run();

  const IntsetResult& intset(size_t i) const { return intset_results_[i]; }
  const StampResult& stamp(size_t i) const { return stamp_results_[i]; }
  const StressResult& stress(size_t i) const { return stress_results_[i]; }

 private:
  const uint32_t jobs_;
  uint64_t default_slack_cycles_ = 0;
  uint32_t default_slack_jobs_ = 1;
  std::vector<std::function<void()>> queue_;
  // Deques: growth never moves existing elements, so queued jobs can hold
  // stable result pointers.
  std::deque<IntsetResult> intset_results_;
  std::deque<StampResult> stamp_results_;
  std::deque<StressResult> stress_results_;
};

}  // namespace harness

#endif  // SRC_HARNESS_SWEEP_H_
