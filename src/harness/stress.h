// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Randomized fault-injection stress harness: runs an IntegerSet workload
// with an asffault::FaultInjector wired into the machine and a
// forward-progress watchdog on the lifecycle-event stream, then checks the
// invariants that must survive any fault mix:
//
//   * set linearizability via membership conservation — for every key, the
//     final membership equals the initial membership plus the net of
//     *successful* inserts and removes observed by the workload threads
//     (every committed operation took effect exactly once, no lost or
//     duplicated updates), plus the structure's own invariant check;
//   * statistics conservation — attempts = commits + aborts on the runtime's
//     aggregated TxStats (no attempt vanishes, none is double-counted);
//   * forward progress — the watchdog's verdict (callers assert kProgress,
//     or deliberately construct livelock/starvation and assert it fires).
//
// The result carries a Digest() string covering commits, aborts and
// injections per cause, cycle counts, and the final set contents; two runs
// of the same config must produce byte-identical digests (replayability).
#ifndef SRC_HARNESS_STRESS_H_
#define SRC_HARNESS_STRESS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_schedule.h"
#include "src/fault/watchdog.h"
#include "src/harness/experiment.h"

namespace harness {

struct StressConfig {
  // Workload shape (structure, threads, ops, runtime, policy, seed, ...).
  // The obs hooks are honored: the tracer attaches to the scheduler and the
  // tx_sink is chained *behind* the watchdog.
  IntsetConfig intset;
  // Faults to inject (asffault::FaultSchedule::Lookup for the built-ins).
  asffault::FaultSchedule schedule;
  asffault::WatchdogParams watchdog;
  // Host-side verification of final membership against the op log (the
  // linearizability check). Costs no simulated cycles.
  bool verify_membership = true;
};

struct StressResult {
  IntsetResult intset;  // Measurements of the underlying run.

  // Effective injections per cause over the measured window.
  std::array<uint64_t, static_cast<size_t>(asfcommon::AbortCause::kNumCauses)> injected{};
  uint64_t total_injected = 0;

  bool watchdog_fired = false;
  asffault::Watchdog::Verdict verdict = asffault::Watchdog::Verdict::kProgress;
  std::string watchdog_diagnosis;
  // Cumulative per-core progress accounting (post-Finalize snapshot): every
  // starved core, max abort streaks, and the longest no-commit window. The
  // benches export this as the obs JSON "progress" section.
  asffault::Watchdog::ProgressReport progress;

  // Empty when every invariant held; else a description of the first
  // violation (membership mismatch, conservation failure, structure damage).
  std::string invariant_violation;

  uint64_t final_cycle = 0;
  uint64_t set_size = 0;
  uint64_t set_hash = 0;  // FNV-1a over the sorted final membership.

  // Replay-comparable fingerprint: commits/aborts/injections per cause,
  // cycle counts, and a hash of the final membership.
  std::string Digest() const;
};

// Runs one fault-injection stress configuration. Deterministic: the same
// config (including schedule seed) produces an identical StressResult.
StressResult RunStress(const StressConfig& cfg);

}  // namespace harness

#endif  // SRC_HARNESS_STRESS_H_
