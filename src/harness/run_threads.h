// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Helper to spawn N simulated worker threads on a Machine and run to
// completion.
#ifndef SRC_HARNESS_RUN_THREADS_H_
#define SRC_HARNESS_RUN_THREADS_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/asf/machine.h"

namespace harness {

using ThreadFn = std::function<asfsim::Task<void>(asfsim::SimThread&, uint32_t)>;

// Spawns `n` workers (thread i runs fn(thread, i)) and runs the simulation.
inline void RunThreads(asf::Machine& m, uint32_t n, const ThreadFn& fn) {
  struct Box {
    asfsim::SimThread* t = nullptr;
    uint32_t id = 0;
    const ThreadFn* fn = nullptr;
  };
  std::vector<std::unique_ptr<Box>> boxes;
  auto trampoline = [](Box* b) -> asfsim::Task<void> { co_await (*b->fn)(*b->t, b->id); };
  for (uint32_t i = 0; i < n; ++i) {
    auto box = std::make_unique<Box>();
    box->id = i;
    box->fn = &fn;
    boxes.push_back(std::move(box));
    boxes.back()->t = &m.scheduler().Spawn(trampoline(boxes.back().get()));
  }
  m.scheduler().Run();
}

}  // namespace harness

#endif  // SRC_HARNESS_RUN_THREADS_H_
