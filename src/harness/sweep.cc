// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/harness/sweep.h"

#include <atomic>
#include <thread>

namespace harness {

uint32_t DefaultJobs() {
  uint32_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ParallelFor(uint32_t jobs, size_t n, const std::function<void(size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  size_t workers = jobs < n ? jobs : n;
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) {
          return;
        }
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

asftm::TxStats MergeTxStats(const std::vector<IntsetResult>& results) {
  asftm::TxStats total;
  for (const IntsetResult& r : results) {
    total.Add(r.tm);
  }
  return total;
}

SweepRunner::SweepRunner(uint32_t jobs) : jobs_(jobs == 0 ? DefaultJobs() : jobs) {}

size_t SweepRunner::SubmitIntset(const IntsetConfig& cfg) {
  ASF_CHECK_MSG(jobs_ == 1 || (cfg.obs.tracer == nullptr && cfg.obs.tx_sink == nullptr),
                "obs hooks cannot be shared across parallel sweep jobs");
  IntsetConfig job_cfg = cfg;
  if (job_cfg.slack_cycles == 0) {
    job_cfg.slack_cycles = default_slack_cycles_;
  }
  if (job_cfg.slack_jobs <= 1) {
    job_cfg.slack_jobs = default_slack_jobs_;
  }
  intset_results_.emplace_back();
  IntsetResult* slot = &intset_results_.back();
  queue_.push_back([job_cfg, slot]() { *slot = RunIntset(job_cfg); });
  return intset_results_.size() - 1;
}

size_t SweepRunner::SubmitIntsetOnParams(const IntsetConfig& cfg,
                                         const asf::MachineParams& params) {
  ASF_CHECK_MSG(jobs_ == 1 || (cfg.obs.tracer == nullptr && cfg.obs.tx_sink == nullptr),
                "obs hooks cannot be shared across parallel sweep jobs");
  IntsetConfig job_cfg = cfg;
  if (job_cfg.slack_cycles == 0) {
    job_cfg.slack_cycles = default_slack_cycles_;
  }
  if (job_cfg.slack_jobs <= 1) {
    job_cfg.slack_jobs = default_slack_jobs_;
  }
  intset_results_.emplace_back();
  IntsetResult* slot = &intset_results_.back();
  queue_.push_back([job_cfg, params, slot]() { *slot = RunIntsetOnParams(job_cfg, params); });
  return intset_results_.size() - 1;
}

size_t SweepRunner::SubmitStamp(const std::string& app_name, const StampConfig& cfg) {
  ASF_CHECK_MSG(jobs_ == 1 || (cfg.obs.tracer == nullptr && cfg.obs.tx_sink == nullptr),
                "obs hooks cannot be shared across parallel sweep jobs");
  StampConfig job_cfg = cfg;
  if (job_cfg.slack_cycles == 0) {
    job_cfg.slack_cycles = default_slack_cycles_;
  }
  if (job_cfg.slack_jobs <= 1) {
    job_cfg.slack_jobs = default_slack_jobs_;
  }
  stamp_results_.emplace_back();
  StampResult* slot = &stamp_results_.back();
  queue_.push_back([app_name, job_cfg, slot]() {
    auto app = MakeStampApp(app_name);
    *slot = RunStamp(*app, job_cfg);
  });
  return stamp_results_.size() - 1;
}

size_t SweepRunner::SubmitStress(const StressConfig& cfg) {
  ASF_CHECK_MSG(jobs_ == 1 ||
                    (cfg.intset.obs.tracer == nullptr && cfg.intset.obs.tx_sink == nullptr),
                "obs hooks cannot be shared across parallel sweep jobs");
  StressConfig job_cfg = cfg;
  if (job_cfg.intset.slack_cycles == 0) {
    job_cfg.intset.slack_cycles = default_slack_cycles_;
  }
  if (job_cfg.intset.slack_jobs <= 1) {
    job_cfg.intset.slack_jobs = default_slack_jobs_;
  }
  stress_results_.emplace_back();
  StressResult* slot = &stress_results_.back();
  queue_.push_back([job_cfg, slot]() { *slot = RunStress(job_cfg); });
  return stress_results_.size() - 1;
}

size_t SweepRunner::Submit(std::function<void()> fn) {
  queue_.push_back(std::move(fn));
  return queue_.size() - 1;
}

void SweepRunner::Run() {
  std::vector<std::function<void()>> batch;
  batch.swap(queue_);
  ParallelFor(jobs_, batch.size(), [&batch](size_t i) { batch[i](); });
}

}  // namespace harness
