// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/harness/stamp_driver.h"

#include "src/fault/fault_injector.h"
#include "src/harness/run_threads.h"
#include "src/sim/sync.h"
#include "src/stamp/genome.h"
#include "src/stamp/intruder.h"
#include "src/stamp/kmeans.h"
#include "src/stamp/labyrinth.h"
#include "src/stamp/ssca2.h"
#include "src/stamp/vacation.h"

namespace harness {

using asfsim::SimThread;
using asfsim::Task;

std::unique_ptr<stamp::StampApp> MakeStampApp(const std::string& name) {
  if (name == "genome") {
    return std::make_unique<stamp::Genome>();
  }
  if (name == "intruder") {
    return std::make_unique<stamp::Intruder>();
  }
  if (name == "kmeans-low") {
    return std::make_unique<stamp::KMeans>(false);
  }
  if (name == "kmeans-high") {
    return std::make_unique<stamp::KMeans>(true);
  }
  if (name == "labyrinth") {
    return std::make_unique<stamp::Labyrinth>();
  }
  if (name == "ssca2") {
    return std::make_unique<stamp::Ssca2>();
  }
  if (name == "vacation-low") {
    return std::make_unique<stamp::Vacation>(false);
  }
  if (name == "vacation-high") {
    return std::make_unique<stamp::Vacation>(true);
  }
  ASF_CHECK_MSG(false, "unknown STAMP app");
  return nullptr;
}

const std::vector<std::string>& StampAppNames() {
  static const std::vector<std::string> kNames = {
      "genome",    "intruder", "kmeans-low",   "kmeans-high",
      "labyrinth", "ssca2",    "vacation-low", "vacation-high",
  };
  return kNames;
}

StampResult RunStamp(stamp::StampApp& app, const StampConfig& cfg) {
  ASF_CHECK(cfg.threads >= 1 && cfg.threads <= 8);
  asf::MachineParams mp = PaperMachineParams(cfg.variant, cfg.threads, cfg.timer_interrupts);
  mp.slack_cycles = cfg.slack_cycles;
  mp.slack_jobs = cfg.slack_jobs;
  asf::Machine m(mp);
  if (cfg.obs.tracer != nullptr) {
    m.scheduler().SetTracer(cfg.obs.tracer);
  }
  // Fault schedules work on STAMP exactly as on the intset stress harness:
  // the injector strikes per access and the machine emits kFaultInjected.
  asffault::FaultInjector injector(cfg.schedule, m.scheduler().num_cores());
  if (!cfg.schedule.empty()) {
    m.SetFaultInjector(&injector);
  }
  asfobs::LatencyRecorder latency_rec;
  asfobs::HeatmapRecorder heatmap_rec;
  if (cfg.collect_latency) {
    latency_rec.SetNext(&heatmap_rec);
    heatmap_rec.SetNext(cfg.obs.tx_sink);
    m.SetTxSink(&latency_rec);
  } else if (cfg.obs.tx_sink != nullptr) {
    m.SetTxSink(cfg.obs.tx_sink);
  }
  IntsetConfig rt_cfg;  // Runtime construction shares the intset factory.
  rt_cfg.seed = cfg.seed;
  auto rt = MakeRuntime(cfg.runtime, m, rt_cfg);
  app.Setup(m, cfg.threads, cfg.seed, cfg.scale);

  asfsim::SimBarrier barrier_a(cfg.threads);
  asfsim::SimBarrier barrier_b(cfg.threads);
  uint64_t measure_start = 0;
  StampResult result;

  RunThreads(m, cfg.threads, [&](SimThread& t, uint32_t tid) -> Task<void> {
    co_await app.SimSetup(*rt, t, tid);
    co_await barrier_a.Arrive(t);
    if (tid == 0) {
      rt->ResetStats();
      for (uint32_t c = 0; c < m.scheduler().num_cores(); ++c) {
        m.scheduler().core(c).ResetStats();
        m.context(c).ResetStats();
      }
      m.mem().ResetStats();
      m.conflict_directory().ResetStats();
      injector.ResetCounts();
      if (cfg.obs.tracer != nullptr) {
        cfg.obs.tracer->Clear();
      }
      if (m.tx_sink() != nullptr) {
        m.tx_sink()->OnMeasurementReset();
      }
      measure_start = t.core().clock();
    }
    co_await barrier_b.Arrive(t);
    co_await app.Worker(*rt, t, tid);
  });

  result.exec_cycles = m.scheduler().MaxCycle() - measure_start;
  result.exec_ms = static_cast<double>(result.exec_cycles) /
                   (static_cast<double>(asfcommon::kCyclesPerMicrosecond) * 1000.0);
  result.tm = rt->TotalStats();
  result.mem = m.mem().TotalStats();
  for (uint32_t c = 0; c < m.scheduler().num_cores(); ++c) {
    for (size_t cat = 0; cat < result.breakdown.cycles.size(); ++cat) {
      result.breakdown.cycles[cat] +=
          m.scheduler().core(c).CategoryCycles(static_cast<asfsim::CycleCategory>(cat));
    }
    result.work_cycles += m.scheduler().core(c).total_work_cycles();
  }
  for (size_t c = 0; c < result.injected.size(); ++c) {
    result.injected[c] = injector.injected(static_cast<asfcommon::AbortCause>(c));
  }
  result.total_injected = injector.total_injected();
  if (cfg.collect_latency) {
    result.latency = latency_rec.stats();
    result.heatmap = heatmap_rec.stats();
  }
  result.validation = app.Validate();
  return result;
}

}  // namespace harness
