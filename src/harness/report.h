// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Machine-readable run reports: serializes one intset or STAMP run
// (configuration + measurements) as a JSON object, for the bench harnesses'
// --json output and for downstream plotting/regression tooling.
#ifndef SRC_HARNESS_REPORT_H_
#define SRC_HARNESS_REPORT_H_

#include <string>

#include "src/harness/experiment.h"
#include "src/harness/stamp_driver.h"
#include "src/obs/json.h"

namespace harness {

// Writes {"config": {...}, "result": {...}} as one value on `w` (usable as a
// nested object inside a larger document).
void WriteIntsetReport(asfobs::JsonWriter& w, const IntsetConfig& cfg, const IntsetResult& r);
void WriteStampReport(asfobs::JsonWriter& w, const std::string& app, const StampConfig& cfg,
                      const StampResult& r);

// Shared pieces, also used by the bench reports.
void WriteTxStats(asfobs::JsonWriter& w, const asftm::TxStats& tm);
void WriteBreakdown(asfobs::JsonWriter& w, const CycleBreakdown& breakdown);

// Standalone single-run documents.
std::string IntsetReportJson(const IntsetConfig& cfg, const IntsetResult& r);
std::string StampReportJson(const std::string& app, const StampConfig& cfg,
                            const StampResult& r);

}  // namespace harness

#endif  // SRC_HARNESS_REPORT_H_
