// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Sorted skip list — the paper's IntegerSet:SkipList. Tower heights are
// derived deterministically from the key (hash-based geometric levels), so
// the structure — and therefore every experiment — is reproducible.
#ifndef SRC_INTSET_SKIP_LIST_H_
#define SRC_INTSET_SKIP_LIST_H_

#include "src/common/arena.h"
#include "src/intset/int_set.h"

namespace intset {

class SkipList : public IntSet {
 public:
  static constexpr uint32_t kMaxLevel = 14;

  explicit SkipList(asfcommon::SimArena* arena = nullptr);
  ~SkipList() override;

  std::string name() const override { return "SkipList"; }
  asfsim::Task<bool> Contains(asftm::Tx& tx, uint64_t key) override;
  asfsim::Task<bool> Insert(asftm::Tx& tx, uint64_t key) override;
  asfsim::Task<bool> Remove(asftm::Tx& tx, uint64_t key) override;
  std::vector<uint64_t> Snapshot() const override;
  std::string CheckInvariants() const override;

  void* head_sentinel() const { return head_; }

 private:
  struct Node {
    uint64_t key;
    uint32_t level;        // Number of forward links (1..kMaxLevel).
    Node* next[kMaxLevel]; // Only [0, level) are used.
  };
  static constexpr uint64_t kMinKey = 0;
  static constexpr uint64_t kMaxKey = ~0ull;

  // Deterministic tower height for `key` (geometric, p = 1/2).
  static uint32_t LevelFor(uint64_t key);

  // Fills preds[i] = rightmost node at level i with key < `key`.
  asfsim::Task<Node*> Locate(asftm::Tx& tx, uint64_t key, Node** preds);

  const bool owns_sentinels_;
  Node* head_;
  Node* tail_;
};

}  // namespace intset

#endif  // SRC_INTSET_SKIP_LIST_H_
