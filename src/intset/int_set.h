// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// IntegerSet microbenchmark interface (paper Sec. 5): an ordered set of
// integers with search/insert/remove, implemented as a linked list, a skip
// list, a red-black tree, and a hash set. Operations run *inside* an atomic
// block: they take the attempt's Tx handle, so one benchmark op = one
// transaction, and compositions (multi-op transactions) are possible.
//
// Nodes are allocated through Tx::TxMalloc (64-byte padded by the allocator)
// so insertions allocate transactionally and structures avoid false sharing,
// matching the paper's padding note.
#ifndef SRC_INTSET_INT_SET_H_
#define SRC_INTSET_INT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tm/tm_api.h"

namespace intset {

class IntSet {
 public:
  virtual ~IntSet() = default;

  virtual std::string name() const = 0;

  // Returns true if `key` is in the set.
  virtual asfsim::Task<bool> Contains(asftm::Tx& tx, uint64_t key) = 0;
  // Inserts `key`; returns true if it was not present (i.e. was inserted).
  virtual asfsim::Task<bool> Insert(asftm::Tx& tx, uint64_t key) = 0;
  // Removes `key`; returns true if it was present (i.e. was removed).
  virtual asfsim::Task<bool> Remove(asftm::Tx& tx, uint64_t key) = 0;

  // --- Host-side (non-simulated) introspection for tests/validation -------
  // Sorted snapshot of the current contents.
  virtual std::vector<uint64_t> Snapshot() const = 0;
  // Structure-specific invariant check; returns an empty string when sound,
  // else a description of the violation.
  virtual std::string CheckInvariants() const = 0;
};

}  // namespace intset

#endif  // SRC_INTSET_INT_SET_H_
