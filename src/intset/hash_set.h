// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Chained hash set — the paper's IntegerSet:HashSet: 2^17 buckets of
// 16 bytes (a table larger than L1+L2, so bucket probes mostly miss, which
// is the cache effect behind the hash set's smaller STM/ASF load-store
// ratio in Table 1).
#ifndef SRC_INTSET_HASH_SET_H_
#define SRC_INTSET_HASH_SET_H_

#include <vector>

#include "src/common/arena.h"
#include "src/intset/int_set.h"

namespace intset {

class HashSet : public IntSet {
 public:
  explicit HashSet(uint32_t bucket_count_log2 = 17, asfcommon::SimArena* arena = nullptr);
  ~HashSet() override = default;

  std::string name() const override { return "HashSet"; }
  asfsim::Task<bool> Contains(asftm::Tx& tx, uint64_t key) override;
  asfsim::Task<bool> Insert(asftm::Tx& tx, uint64_t key) override;
  asfsim::Task<bool> Remove(asftm::Tx& tx, uint64_t key) override;
  std::vector<uint64_t> Snapshot() const override;
  std::string CheckInvariants() const override;

  const void* table_data() const { return buckets_; }
  uint64_t table_bytes() const { return bucket_count_ * sizeof(Bucket); }

 private:
  struct Node {
    uint64_t key;
    Node* next;
  };
  struct Bucket {
    Node* head = nullptr;
    uint64_t pad = 0;  // 16 bytes per bucket, as in the paper's description.
  };

  Bucket* BucketFor(uint64_t key) {
    uint64_t z = key * 0x9E3779B97F4A7C15ull;
    return &buckets_[(z >> 40) & (bucket_count_ - 1)];
  }

  std::vector<Bucket> storage_;  // Used when no arena is provided.
  Bucket* buckets_ = nullptr;
  uint64_t bucket_count_ = 0;
};

}  // namespace intset

#endif  // SRC_INTSET_HASH_SET_H_
