// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/intset/rb_tree.h"

#include <cstdlib>
#include <new>

namespace intset {

using asfsim::Task;
using asftm::Tx;

RbTree::RbTree(asfcommon::SimArena* arena) : owns_nil_(arena == nullptr) {
  void* n = arena != nullptr ? arena->Alloc(64, 64) : std::aligned_alloc(64, 64);
  nil_ = new (n) Node{};
  nil_->key = 0;
  nil_->color = kBlack;
  nil_->left = nil_;
  nil_->right = nil_;
  nil_->parent = nil_;
  root_cell_ptr_ = arena != nullptr ? arena->New<RootCell>() : &root_cell_storage_;
  root_cell_ptr_->root = nil_;
}

RbTree::~RbTree() {
  if (owns_nil_) {
    std::free(nil_);
  }
}

Task<RbTree::Node*> RbTree::FindNode(Tx& tx, uint64_t key) {
  Node* cur = co_await tx.Read(&root_cell_ptr_->root);
  while (!IsNil(cur)) {
    tx.Work(16);  // Key compare + branch per level of the descent.
    uint64_t k = co_await tx.Read(&cur->key);
    if (k == key) {
      co_return cur;
    }
    cur = co_await tx.Read(k < key ? &cur->right : &cur->left);
  }
  co_return cur;  // nil_
}

Task<bool> RbTree::Contains(Tx& tx, uint64_t key) {
  Node* n = co_await FindNode(tx, key);
  co_return !IsNil(n);
}

Task<void> RbTree::LeftRotate(Tx& tx, Node* x) {
  Node* y = co_await tx.Read(&x->right);
  Node* yl = co_await tx.Read(&y->left);
  co_await tx.Write(&x->right, yl);
  if (!IsNil(yl)) {
    co_await tx.Write(&yl->parent, x);
  }
  Node* xp = co_await tx.Read(&x->parent);
  co_await tx.Write(&y->parent, xp);
  if (IsNil(xp)) {
    co_await tx.Write(&root_cell_ptr_->root, y);
  } else {
    Node* xpl = co_await tx.Read(&xp->left);
    co_await tx.Write(xpl == x ? &xp->left : &xp->right, y);
  }
  co_await tx.Write(&y->left, x);
  co_await tx.Write(&x->parent, y);
}

Task<void> RbTree::RightRotate(Tx& tx, Node* x) {
  Node* y = co_await tx.Read(&x->left);
  Node* yr = co_await tx.Read(&y->right);
  co_await tx.Write(&x->left, yr);
  if (!IsNil(yr)) {
    co_await tx.Write(&yr->parent, x);
  }
  Node* xp = co_await tx.Read(&x->parent);
  co_await tx.Write(&y->parent, xp);
  if (IsNil(xp)) {
    co_await tx.Write(&root_cell_ptr_->root, y);
  } else {
    Node* xpl = co_await tx.Read(&xp->left);
    co_await tx.Write(xpl == x ? &xp->left : &xp->right, y);
  }
  co_await tx.Write(&y->right, x);
  co_await tx.Write(&x->parent, y);
}

Task<void> RbTree::InsertFixup(Tx& tx, Node* z) {
  for (;;) {
    Node* zp = co_await tx.Read(&z->parent);
    if (IsNil(zp)) {
      break;
    }
    uint64_t zp_color = co_await tx.Read(&zp->color);
    if (zp_color != kRed) {
      break;
    }
    Node* zpp = co_await tx.Read(&zp->parent);  // Red parent => non-nil grandparent.
    Node* zppl = co_await tx.Read(&zpp->left);
    if (zp == zppl) {
      Node* uncle = co_await tx.Read(&zpp->right);
      uint64_t uncle_color = IsNil(uncle) ? kBlack : co_await tx.Read(&uncle->color);
      if (uncle_color == kRed) {
        co_await tx.Write(&zp->color, kBlack);
        co_await tx.Write(&uncle->color, kBlack);
        co_await tx.Write(&zpp->color, kRed);
        z = zpp;
        continue;
      }
      Node* zpr = co_await tx.Read(&zp->right);
      if (z == zpr) {
        z = zp;
        co_await LeftRotate(tx, z);
        zp = co_await tx.Read(&z->parent);
        zpp = co_await tx.Read(&zp->parent);
      }
      co_await tx.Write(&zp->color, kBlack);
      co_await tx.Write(&zpp->color, kRed);
      co_await RightRotate(tx, zpp);
    } else {
      Node* uncle = zppl;
      uint64_t uncle_color = IsNil(uncle) ? kBlack : co_await tx.Read(&uncle->color);
      if (uncle_color == kRed) {
        co_await tx.Write(&zp->color, kBlack);
        co_await tx.Write(&uncle->color, kBlack);
        co_await tx.Write(&zpp->color, kRed);
        z = zpp;
        continue;
      }
      Node* zpl = co_await tx.Read(&zp->left);
      if (z == zpl) {
        z = zp;
        co_await RightRotate(tx, z);
        zp = co_await tx.Read(&z->parent);
        zpp = co_await tx.Read(&zp->parent);
      }
      co_await tx.Write(&zp->color, kBlack);
      co_await tx.Write(&zpp->color, kRed);
      co_await LeftRotate(tx, zpp);
    }
  }
  Node* root = co_await tx.Read(&root_cell_ptr_->root);
  uint64_t rc = co_await tx.Read(&root->color);
  if (rc != kBlack) {
    co_await tx.Write(&root->color, kBlack);
  }
}

Task<bool> RbTree::Insert(Tx& tx, uint64_t key) {
  Node* parent = nil_;
  Node* cur = co_await tx.Read(&root_cell_ptr_->root);
  while (!IsNil(cur)) {
    tx.Work(16);
    uint64_t k = co_await tx.Read(&cur->key);
    if (k == key) {
      co_return false;
    }
    parent = cur;
    cur = co_await tx.Read(k < key ? &cur->right : &cur->left);
  }
  void* mem = co_await tx.TxMalloc(sizeof(Node));
  Node* z = static_cast<Node*>(mem);
  co_await tx.Write(&z->key, key);
  co_await tx.Write(&z->color, kRed);
  co_await tx.Write(&z->left, nil_);
  co_await tx.Write(&z->right, nil_);
  co_await tx.Write(&z->parent, parent);
  if (IsNil(parent)) {
    co_await tx.Write(&root_cell_ptr_->root, z);
  } else {
    uint64_t pk = co_await tx.Read(&parent->key);
    co_await tx.Write(pk < key ? &parent->right : &parent->left, z);
  }
  co_await InsertFixup(tx, z);
  co_return true;
}

Task<void> RbTree::Transplant(Tx& tx, Node* u, Node* u_parent, Node* v) {
  if (IsNil(u_parent)) {
    co_await tx.Write(&root_cell_ptr_->root, v);
  } else {
    Node* upl = co_await tx.Read(&u_parent->left);
    co_await tx.Write(upl == u ? &u_parent->left : &u_parent->right, v);
  }
  if (!IsNil(v)) {
    co_await tx.Write(&v->parent, u_parent);
  }
}

Task<void> RbTree::DeleteFixup(Tx& tx, Node* x, Node* parent) {
  for (;;) {
    if (IsNil(parent)) {
      break;  // x is the root.
    }
    uint64_t x_color = IsNil(x) ? kBlack : co_await tx.Read(&x->color);
    if (x_color == kRed) {
      break;
    }
    Node* pl = co_await tx.Read(&parent->left);
    if (x == pl) {
      Node* w = co_await tx.Read(&parent->right);
      uint64_t wc = co_await tx.Read(&w->color);
      if (wc == kRed) {
        co_await tx.Write(&w->color, kBlack);
        co_await tx.Write(&parent->color, kRed);
        co_await LeftRotate(tx, parent);
        w = co_await tx.Read(&parent->right);
      }
      Node* wl = co_await tx.Read(&w->left);
      Node* wr = co_await tx.Read(&w->right);
      uint64_t wlc = IsNil(wl) ? kBlack : co_await tx.Read(&wl->color);
      uint64_t wrc = IsNil(wr) ? kBlack : co_await tx.Read(&wr->color);
      if (wlc == kBlack && wrc == kBlack) {
        co_await tx.Write(&w->color, kRed);
        x = parent;
        parent = co_await tx.Read(&x->parent);
        continue;
      }
      if (wrc == kBlack) {
        co_await tx.Write(&wl->color, kBlack);
        co_await tx.Write(&w->color, kRed);
        co_await RightRotate(tx, w);
        w = co_await tx.Read(&parent->right);
        wr = co_await tx.Read(&w->right);
      }
      uint64_t pc = co_await tx.Read(&parent->color);
      co_await tx.Write(&w->color, pc);
      co_await tx.Write(&parent->color, kBlack);
      if (!IsNil(wr)) {
        co_await tx.Write(&wr->color, kBlack);
      }
      co_await LeftRotate(tx, parent);
      break;
    } else {
      Node* w = pl;
      uint64_t wc = co_await tx.Read(&w->color);
      if (wc == kRed) {
        co_await tx.Write(&w->color, kBlack);
        co_await tx.Write(&parent->color, kRed);
        co_await RightRotate(tx, parent);
        w = co_await tx.Read(&parent->left);
      }
      Node* wl = co_await tx.Read(&w->left);
      Node* wr = co_await tx.Read(&w->right);
      uint64_t wlc = IsNil(wl) ? kBlack : co_await tx.Read(&wl->color);
      uint64_t wrc = IsNil(wr) ? kBlack : co_await tx.Read(&wr->color);
      if (wlc == kBlack && wrc == kBlack) {
        co_await tx.Write(&w->color, kRed);
        x = parent;
        parent = co_await tx.Read(&x->parent);
        continue;
      }
      if (wlc == kBlack) {
        co_await tx.Write(&wr->color, kBlack);
        co_await tx.Write(&w->color, kRed);
        co_await LeftRotate(tx, w);
        w = co_await tx.Read(&parent->left);
        wl = co_await tx.Read(&w->left);
      }
      uint64_t pc = co_await tx.Read(&parent->color);
      co_await tx.Write(&w->color, pc);
      co_await tx.Write(&parent->color, kBlack);
      if (!IsNil(wl)) {
        co_await tx.Write(&wl->color, kBlack);
      }
      co_await RightRotate(tx, parent);
      break;
    }
  }
  if (!IsNil(x)) {
    uint64_t xc = co_await tx.Read(&x->color);
    if (xc != kBlack) {
      co_await tx.Write(&x->color, kBlack);
    }
  }
}

Task<bool> RbTree::Remove(Tx& tx, uint64_t key) {
  Node* z = co_await FindNode(tx, key);
  if (IsNil(z)) {
    co_return false;
  }
  Node* y = z;
  uint64_t y_orig_color = co_await tx.Read(&y->color);
  Node* x = nil_;
  Node* x_parent = nil_;
  Node* zl = co_await tx.Read(&z->left);
  Node* zr = co_await tx.Read(&z->right);
  Node* zp = co_await tx.Read(&z->parent);
  if (IsNil(zl)) {
    x = zr;
    x_parent = zp;
    co_await Transplant(tx, z, zp, zr);
  } else if (IsNil(zr)) {
    x = zl;
    x_parent = zp;
    co_await Transplant(tx, z, zp, zl);
  } else {
    // y = minimum of z's right subtree.
    y = zr;
    for (;;) {
      Node* yl = co_await tx.Read(&y->left);
      if (IsNil(yl)) {
        break;
      }
      y = yl;
    }
    y_orig_color = co_await tx.Read(&y->color);
    x = co_await tx.Read(&y->right);
    Node* yp = co_await tx.Read(&y->parent);
    if (yp == z) {
      x_parent = y;
    } else {
      x_parent = yp;
      co_await Transplant(tx, y, yp, x);
      co_await tx.Write(&y->right, zr);
      co_await tx.Write(&zr->parent, y);
    }
    co_await Transplant(tx, z, zp, y);
    co_await tx.Write(&y->left, zl);
    co_await tx.Write(&zl->parent, y);
    uint64_t zc = co_await tx.Read(&z->color);
    co_await tx.Write(&y->color, zc);
  }
  co_await tx.TxFree(z);
  if (y_orig_color == kBlack) {
    co_await DeleteFixup(tx, x, x_parent);
  }
  co_return true;
}

std::vector<uint64_t> RbTree::Snapshot() const {
  std::vector<uint64_t> out;
  // Iterative in-order walk (host-side).
  std::vector<const Node*> stack;
  const Node* cur = root_cell_ptr_->root;
  while (!IsNil(cur) || !stack.empty()) {
    while (!IsNil(cur)) {
      stack.push_back(cur);
      cur = cur->left;
    }
    cur = stack.back();
    stack.pop_back();
    out.push_back(cur->key);
    cur = cur->right;
  }
  return out;
}

int RbTree::CheckSubtree(const Node* n, uint64_t lo, uint64_t hi, std::string* err) const {
  if (IsNil(n)) {
    return 1;  // Nil counts as one black.
  }
  if (n->key < lo || n->key > hi) {
    *err = "BST order violated";
    return -1;
  }
  if (n->color == kRed) {
    if ((!IsNil(n->left) && n->left->color == kRed) ||
        (!IsNil(n->right) && n->right->color == kRed)) {
      *err = "red node with red child";
      return -1;
    }
  } else if (n->color != kBlack) {
    *err = "invalid color";
    return -1;
  }
  if (!IsNil(n->left) && n->left->parent != n) {
    *err = "left child parent link broken";
    return -1;
  }
  if (!IsNil(n->right) && n->right->parent != n) {
    *err = "right child parent link broken";
    return -1;
  }
  int lh = CheckSubtree(n->left, lo, n->key == 0 ? 0 : n->key - 1, err);
  if (lh < 0) {
    return -1;
  }
  int rh = CheckSubtree(n->right, n->key + 1, hi, err);
  if (rh < 0) {
    return -1;
  }
  if (lh != rh) {
    *err = "black height mismatch";
    return -1;
  }
  return lh + (n->color == kBlack ? 1 : 0);
}

std::string RbTree::CheckInvariants() const {
  const Node* root = root_cell_ptr_->root;
  if (IsNil(root)) {
    return "";
  }
  if (root->color != kBlack) {
    return "root not black";
  }
  if (!IsNil(root->parent)) {
    return "root parent not nil";
  }
  std::string err;
  if (CheckSubtree(root, 0, ~0ull, &err) < 0) {
    return err;
  }
  return "";
}

}  // namespace intset
