// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/intset/linked_list.h"

#include <new>

namespace intset {

using asfsim::Task;
using asftm::Tx;

LinkedList::LinkedList(bool early_release, asfcommon::SimArena* arena)
    : early_release_(early_release), owns_sentinels_(arena == nullptr) {
  // Each sentinel gets its own cache line; they never move or get freed
  // mid-run.
  void* h = arena != nullptr ? arena->Alloc(64, 64) : std::aligned_alloc(64, 64);
  void* t = arena != nullptr ? arena->Alloc(64, 64) : std::aligned_alloc(64, 64);
  head_ = new (h) Node{kMinKey, nullptr};
  tail_ = new (t) Node{kMaxKey, nullptr};
  head_->next = tail_;
}

LinkedList::~LinkedList() {
  // Interior nodes belong to the TxAllocator pools; only heap sentinels are
  // ours to free (arena sentinels die with the arena).
  if (owns_sentinels_) {
    std::free(head_);
    std::free(tail_);
  }
}

std::string LinkedList::name() const {
  return early_release_ ? "LinkedList+EarlyRelease" : "LinkedList";
}

Task<void> LinkedList::Locate(Tx& tx, uint64_t key, Node** prev_out, Node** cur_out) {
  Node* prev = head_;
  Node* cur = co_await tx.Read(&head_->next);
  for (;;) {
    tx.Work(16);  // Compare/branch/address arithmetic per node visit.
    uint64_t k = co_await tx.Read(&cur->key);
    if (k >= key) {
      break;
    }
    Node* next = co_await tx.Read(&cur->next);
    if (early_release_) {
      // Hand-over-hand: prev is leaving the window; its monitoring is no
      // longer needed for the linearization of this operation.
      if (prev != head_) {
        co_await tx.Release(&prev->key);
        co_await tx.Release(&prev->next);
      }
    }
    prev = cur;
    cur = next;
  }
  *prev_out = prev;
  *cur_out = cur;
}

Task<bool> LinkedList::Contains(Tx& tx, uint64_t key) {
  Node* prev = nullptr;
  Node* cur = nullptr;
  co_await Locate(tx, key, &prev, &cur);
  uint64_t k = co_await tx.Read(&cur->key);
  co_return k == key;
}

Task<bool> LinkedList::Insert(Tx& tx, uint64_t key) {
  Node* prev = nullptr;
  Node* cur = nullptr;
  co_await Locate(tx, key, &prev, &cur);
  uint64_t k = co_await tx.Read(&cur->key);
  if (k == key) {
    co_return false;
  }
  void* mem = co_await tx.TxMalloc(sizeof(Node));
  Node* node = static_cast<Node*>(mem);
  co_await tx.Write(&node->key, key);
  co_await tx.Write(&node->next, cur);
  co_await tx.Write(&prev->next, node);
  co_return true;
}

Task<bool> LinkedList::Remove(Tx& tx, uint64_t key) {
  Node* prev = nullptr;
  Node* cur = nullptr;
  co_await Locate(tx, key, &prev, &cur);
  uint64_t k = co_await tx.Read(&cur->key);
  if (k != key) {
    co_return false;
  }
  Node* next = co_await tx.Read(&cur->next);
  co_await tx.Write(&prev->next, next);
  co_await tx.TxFree(cur);
  co_return true;
}

std::vector<uint64_t> LinkedList::Snapshot() const {
  std::vector<uint64_t> out;
  for (Node* n = head_->next; n != tail_; n = n->next) {
    out.push_back(n->key);
  }
  return out;
}

std::string LinkedList::CheckInvariants() const {
  uint64_t last = kMinKey;
  for (Node* n = head_->next; n != tail_; n = n->next) {
    if (n->key <= last && last != kMinKey) {
      return "list not strictly sorted";
    }
    if (n->key == kMinKey || n->key == kMaxKey) {
      return "sentinel key in interior node";
    }
    last = n->key;
  }
  return "";
}

}  // namespace intset
