// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Sorted singly linked list with sentinel head/tail — the paper's
// IntegerSet:LinkList. Optionally uses ASF early release (RELEASE) in
// hand-over-hand fashion during traversal, which keeps only a sliding window
// of nodes in the read set and makes even an 8-entry LLB sufficient for long
// lists (the Figure-8 experiment).
#ifndef SRC_INTSET_LINKED_LIST_H_
#define SRC_INTSET_LINKED_LIST_H_

#include "src/common/arena.h"
#include "src/intset/int_set.h"

namespace intset {

class LinkedList : public IntSet {
 public:
  // `early_release` enables RELEASE-based traversal. Sentinels come from
  // `arena` when provided (deterministic addresses), else from the heap.
  explicit LinkedList(bool early_release = false, asfcommon::SimArena* arena = nullptr);
  ~LinkedList() override;

  std::string name() const override;
  asfsim::Task<bool> Contains(asftm::Tx& tx, uint64_t key) override;
  asfsim::Task<bool> Insert(asftm::Tx& tx, uint64_t key) override;
  asfsim::Task<bool> Remove(asftm::Tx& tx, uint64_t key) override;
  std::vector<uint64_t> Snapshot() const override;
  std::string CheckInvariants() const override;

  // Host address range of the sentinels (for page pretouching).
  void* head_sentinel() const { return head_; }

 private:
  struct Node {
    uint64_t key;
    Node* next;
  };
  static constexpr uint64_t kMinKey = 0;
  static constexpr uint64_t kMaxKey = ~0ull;

  // Finds (prev, cur) with prev->key < key <= cur->key, transactionally.
  // With early release, releases nodes behind the traversal window.
  asfsim::Task<void> Locate(asftm::Tx& tx, uint64_t key, Node** prev_out, Node** cur_out);

  const bool early_release_;
  const bool owns_sentinels_;
  Node* head_;  // Sentinel with kMinKey; head_->next chains to tail.
  Node* tail_;  // Sentinel with kMaxKey.
};

}  // namespace intset

#endif  // SRC_INTSET_LINKED_LIST_H_
