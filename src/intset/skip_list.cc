// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/intset/skip_list.h"

#include <cstdlib>
#include <new>

namespace intset {

using asfsim::Task;
using asftm::Tx;

SkipList::SkipList(asfcommon::SimArena* arena) : owns_sentinels_(arena == nullptr) {
  void* h = arena != nullptr ? arena->Alloc(sizeof(Node), 64) : std::aligned_alloc(64, sizeof(Node));
  void* t = arena != nullptr ? arena->Alloc(sizeof(Node), 64) : std::aligned_alloc(64, sizeof(Node));
  head_ = new (h) Node{};
  tail_ = new (t) Node{};
  head_->key = kMinKey;
  head_->level = kMaxLevel;
  tail_->key = kMaxKey;
  tail_->level = kMaxLevel;
  for (uint32_t i = 0; i < kMaxLevel; ++i) {
    head_->next[i] = tail_;
    tail_->next[i] = nullptr;
  }
}

SkipList::~SkipList() {
  if (owns_sentinels_) {
    std::free(head_);
    std::free(tail_);
  }
}

uint32_t SkipList::LevelFor(uint64_t key) {
  // splitmix-style scramble, then count trailing ones (geometric p=1/2).
  uint64_t z = key + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  uint32_t level = 1;
  while ((z & 1) != 0 && level < kMaxLevel) {
    ++level;
    z >>= 1;
  }
  return level;
}

Task<SkipList::Node*> SkipList::Locate(Tx& tx, uint64_t key, Node** preds) {
  Node* pred = head_;
  for (int32_t lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
    Node* cur = co_await tx.Read(&pred->next[lvl]);
    for (;;) {
      tx.Work(16);  // Level bookkeeping + compare per visited node.
      uint64_t k = co_await tx.Read(&cur->key);
      if (k >= key) {
        break;
      }
      pred = cur;
      cur = co_await tx.Read(&pred->next[lvl]);
    }
    preds[lvl] = pred;
  }
  // The candidate is the successor at level 0.
  Node* cand = co_await tx.Read(&preds[0]->next[0]);
  co_return cand;
}

Task<bool> SkipList::Contains(Tx& tx, uint64_t key) {
  Node* preds[kMaxLevel];
  Node* cand = co_await Locate(tx, key, preds);
  uint64_t k = co_await tx.Read(&cand->key);
  co_return k == key;
}

Task<bool> SkipList::Insert(Tx& tx, uint64_t key) {
  Node* preds[kMaxLevel];
  Node* cand = co_await Locate(tx, key, preds);
  uint64_t k = co_await tx.Read(&cand->key);
  if (k == key) {
    co_return false;
  }
  uint32_t level = LevelFor(key);
  void* mem = co_await tx.TxMalloc(sizeof(Node));
  Node* node = static_cast<Node*>(mem);
  co_await tx.Write(&node->key, key);
  co_await tx.Write(&node->level, level);
  for (uint32_t i = 0; i < level; ++i) {
    Node* succ = co_await tx.Read(&preds[i]->next[i]);
    co_await tx.Write(&node->next[i], succ);
    co_await tx.Write(&preds[i]->next[i], node);
  }
  co_return true;
}

Task<bool> SkipList::Remove(Tx& tx, uint64_t key) {
  Node* preds[kMaxLevel];
  Node* cand = co_await Locate(tx, key, preds);
  uint64_t k = co_await tx.Read(&cand->key);
  if (k != key) {
    co_return false;
  }
  uint32_t level = co_await tx.Read(&cand->level);
  for (uint32_t i = 0; i < level; ++i) {
    Node* succ = co_await tx.Read(&cand->next[i]);
    co_await tx.Write(&preds[i]->next[i], succ);
  }
  co_await tx.TxFree(cand);
  co_return true;
}

std::vector<uint64_t> SkipList::Snapshot() const {
  std::vector<uint64_t> out;
  for (Node* n = head_->next[0]; n != tail_; n = n->next[0]) {
    out.push_back(n->key);
  }
  return out;
}

std::string SkipList::CheckInvariants() const {
  // Level-0 strictly sorted.
  uint64_t last = kMinKey;
  size_t count0 = 0;
  for (Node* n = head_->next[0]; n != tail_; n = n->next[0]) {
    if (count0 > 0 && n->key <= last) {
      return "level-0 not strictly sorted";
    }
    last = n->key;
    ++count0;
    if (n->level < 1 || n->level > kMaxLevel) {
      return "node level out of range";
    }
    if (n->level != LevelFor(n->key)) {
      return "node level does not match deterministic level";
    }
  }
  // Every higher level is a subsequence of level 0 and sorted.
  for (uint32_t lvl = 1; lvl < kMaxLevel; ++lvl) {
    uint64_t prev = kMinKey;
    size_t count = 0;
    for (Node* n = head_->next[lvl]; n != tail_; n = n->next[lvl]) {
      if (n->level <= lvl) {
        return "node linked above its level";
      }
      if (count > 0 && n->key <= prev) {
        return "upper level not sorted";
      }
      prev = n->key;
      ++count;
    }
    if (count > count0) {
      return "upper level larger than level 0";
    }
  }
  return "";
}

}  // namespace intset
