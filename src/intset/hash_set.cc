// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/intset/hash_set.h"

#include <algorithm>
#include <unordered_set>

namespace intset {

using asfsim::Task;
using asftm::Tx;

HashSet::HashSet(uint32_t bucket_count_log2, asfcommon::SimArena* arena) {
  bucket_count_ = uint64_t{1} << bucket_count_log2;
  if (arena != nullptr) {
    buckets_ = arena->NewArray<Bucket>(bucket_count_);
  } else {
    storage_.resize(bucket_count_);
    buckets_ = storage_.data();
  }
}

Task<bool> HashSet::Contains(Tx& tx, uint64_t key) {
  tx.Work(12);  // Hash computation.
  Bucket* b = BucketFor(key);
  Node* cur = co_await tx.Read(&b->head);
  while (cur != nullptr) {
    uint64_t k = co_await tx.Read(&cur->key);
    if (k == key) {
      co_return true;
    }
    cur = co_await tx.Read(&cur->next);
  }
  co_return false;
}

Task<bool> HashSet::Insert(Tx& tx, uint64_t key) {
  tx.Work(12);
  Bucket* b = BucketFor(key);
  Node* head = co_await tx.Read(&b->head);
  for (Node* cur = head; cur != nullptr;) {
    uint64_t k = co_await tx.Read(&cur->key);
    if (k == key) {
      co_return false;
    }
    cur = co_await tx.Read(&cur->next);
  }
  void* mem = co_await tx.TxMalloc(sizeof(Node));
  Node* node = static_cast<Node*>(mem);
  co_await tx.Write(&node->key, key);
  co_await tx.Write(&node->next, head);
  co_await tx.Write(&b->head, node);
  co_return true;
}

Task<bool> HashSet::Remove(Tx& tx, uint64_t key) {
  tx.Work(12);
  Bucket* b = BucketFor(key);
  Node* prev = nullptr;
  Node* cur = co_await tx.Read(&b->head);
  while (cur != nullptr) {
    uint64_t k = co_await tx.Read(&cur->key);
    Node* next = co_await tx.Read(&cur->next);
    if (k == key) {
      if (prev == nullptr) {
        co_await tx.Write(&b->head, next);
      } else {
        co_await tx.Write(&prev->next, next);
      }
      co_await tx.TxFree(cur);
      co_return true;
    }
    prev = cur;
    cur = next;
  }
  co_return false;
}

std::vector<uint64_t> HashSet::Snapshot() const {
  std::vector<uint64_t> out;
  for (uint64_t i = 0; i < bucket_count_; ++i) {
    for (const Node* n = buckets_[i].head; n != nullptr; n = n->next) {
      out.push_back(n->key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string HashSet::CheckInvariants() const {
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < bucket_count_; ++i) {
    for (const Node* n = buckets_[i].head; n != nullptr; n = n->next) {
      if (!seen.insert(n->key).second) {
        return "duplicate key in hash set";
      }
      if (const_cast<HashSet*>(this)->BucketFor(n->key) != &buckets_[i]) {
        return "key chained in the wrong bucket";
      }
    }
  }
  return "";
}

}  // namespace intset
