// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Red-black tree — the paper's IntegerSet:RBTree. A classic CLRS-style
// implementation with parent pointers, executed transactionally. The nil
// sentinel is never written (fixups carry the parent explicitly), so nil
// does not become a write-conflict hotspot between transactions.
#ifndef SRC_INTSET_RB_TREE_H_
#define SRC_INTSET_RB_TREE_H_

#include "src/common/arena.h"
#include "src/intset/int_set.h"

namespace intset {

class RbTree : public IntSet {
 public:
  explicit RbTree(asfcommon::SimArena* arena = nullptr);
  ~RbTree() override;

  std::string name() const override { return "RBTree"; }
  asfsim::Task<bool> Contains(asftm::Tx& tx, uint64_t key) override;
  asfsim::Task<bool> Insert(asftm::Tx& tx, uint64_t key) override;
  asfsim::Task<bool> Remove(asftm::Tx& tx, uint64_t key) override;
  std::vector<uint64_t> Snapshot() const override;
  std::string CheckInvariants() const override;

  void* root_cell() const { return root_cell_ptr_; }

 private:
  static constexpr uint64_t kBlack = 0;
  static constexpr uint64_t kRed = 1;

  struct Node {
    uint64_t key;
    uint64_t color;
    Node* left;
    Node* right;
    Node* parent;
  };
  struct alignas(64) RootCell {
    Node* root = nullptr;
  };

  bool IsNil(const Node* n) const { return n == nil_; }

  asfsim::Task<Node*> FindNode(asftm::Tx& tx, uint64_t key);
  asfsim::Task<void> LeftRotate(asftm::Tx& tx, Node* x);
  asfsim::Task<void> RightRotate(asftm::Tx& tx, Node* x);
  asfsim::Task<void> InsertFixup(asftm::Tx& tx, Node* z);
  // Replaces subtree `u` (whose parent is `u_parent`) with `v`.
  asfsim::Task<void> Transplant(asftm::Tx& tx, Node* u, Node* u_parent, Node* v);
  asfsim::Task<void> DeleteFixup(asftm::Tx& tx, Node* x, Node* parent);

  // Host-side recursive invariant check; returns black height or -1.
  int CheckSubtree(const Node* n, uint64_t lo, uint64_t hi, std::string* err) const;

  const bool owns_nil_;
  Node* nil_;  // Shared sentinel: always black, never written in fixups.
  RootCell* root_cell_ptr_;
  RootCell root_cell_storage_;
};

}  // namespace intset

#endif  // SRC_INTSET_RB_TREE_H_
