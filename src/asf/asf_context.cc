// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/asf/asf_context.h"

namespace asf {

using asfcommon::AbortCause;

bool AsfContext::Speculate() {
  if (depth_ == 0) {
    ++stats_.speculates;
    ASF_CHECK(llb_.size() == 0);
    ASF_CHECK(l1_read_lines_.empty());
  }
  if (depth_ >= kMaxNestingDepth) {
    return false;
  }
  ++depth_;
  if (depth_ == 1 && dir_ != nullptr) {
    dir_->OnActivate(core_id_);
  }
  return true;
}

bool AsfContext::CommitTop() {
  ASF_CHECK_MSG(depth_ > 0, "COMMIT outside a speculative region");
  --depth_;
  if (depth_ > 0) {
    return false;  // Flat nesting: inner commits are no-ops.
  }
  ++stats_.commits;
  TeardownDirectory();
  llb_.Clear();
  l1_read_lines_.Clear();
  atomic_phase_ = false;
  return true;
}

void AsfContext::Abort(AbortCause cause) {
  if (depth_ == 0) {
    return;
  }
  ++stats_.aborts[static_cast<size_t>(cause)];
  TeardownDirectory();
  llb_.RestoreAll();
  l1_read_lines_.Clear();
  depth_ = 0;
  atomic_phase_ = false;
}

void AsfContext::TeardownDirectory() {
  if (dir_ == nullptr) {
    return;
  }
  // ForEachTrackedLine would double-visit nothing here (LLB and L1 read bits
  // are disjoint by construction), but RemoveLine is idempotent regardless.
  ForEachTrackedLine([&](uint64_t line, bool /*written*/) { dir_->RemoveLine(core_id_, line); });
  dir_->OnDeactivate(core_id_);
}

bool AsfContext::AddRead(uint64_t line) {
  ASF_CHECK(active());
  if (variant_.asf1_static_set && atomic_phase_ && !HasRead(line) && !HasWrite(line)) {
    return false;  // ASF1: no set expansion inside the atomic phase.
  }
  if (variant_.l1_read_set) {
    // The L1 tracks reads; a line already in the write set needs no extra
    // tracking (the LLB monitors it).
    if (llb_.HasWrittenLine(line)) {
      return true;
    }
    l1_read_lines_.Insert(line);
    if (dir_ != nullptr) {
      dir_->AddReader(core_id_, line);
    }
    return true;  // Capacity effects arrive via OnL1Drop displacement.
  }
  if (!llb_.AddRead(line)) {
    return false;
  }
  // A line we already wrote is monitored through the writer record; adding a
  // reader bit would break the directory's exclusive-writer invariant.
  if (dir_ != nullptr && !llb_.HasWrittenLine(line)) {
    dir_->AddReader(core_id_, line);
  }
  return true;
}

bool AsfContext::AddWrite(uint64_t line) {
  ASF_CHECK(active());
  if (variant_.asf1_static_set && atomic_phase_ && !HasRead(line) && !HasWrite(line)) {
    return false;  // ASF1: new lines cannot join the set mid-atomic-phase.
  }
  atomic_phase_ = true;
  if (variant_.l1_read_set) {
    // Write set lives in the LLB; drop any read-bit tracking for the line
    // (the LLB entry subsumes it, and keeping it would turn a later benign
    // L1 displacement into a spurious capacity abort).
    if (!llb_.AddWrite(line)) {
      return false;
    }
    l1_read_lines_.Erase(line);
  } else if (!llb_.AddWrite(line)) {
    return false;
  }
  if (dir_ != nullptr) {
    dir_->SetWriter(core_id_, line);
  }
  return true;
}

void AsfContext::Release(uint64_t line) {
  if (!active()) {
    return;
  }
  bool dropped;
  if (variant_.l1_read_set) {
    dropped = l1_read_lines_.Erase(line);
  } else {
    dropped = llb_.Release(line);
  }
  if (dropped && dir_ != nullptr) {
    dir_->DropReader(core_id_, line);
  }
}

bool AsfContext::HasRead(uint64_t line) const {
  if (!active()) {
    return false;
  }
  if (variant_.l1_read_set) {
    return l1_read_lines_.Contains(line) || llb_.HasLine(line);
  }
  return llb_.HasLine(line);
}

bool AsfContext::OnL1Drop(uint64_t line) {
  if (!active() || !variant_.l1_read_set) {
    return false;
  }
  return l1_read_lines_.Contains(line);
}

}  // namespace asf
