// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Per-core ASF speculative-region state machine (paper Sec. 2.2).
//
// Tracks region activity, flat nesting depth, the protected read and write
// sets (in the LLB, or — for the "w/ L1" variants — the read set via
// speculative-read bits in the modeled L1 cache), and performs architectural
// rollback on abort. Conflict *policy* (requester wins) is applied by the
// Machine through the shared ConflictDirectory; every protected-set mutation
// here is mirrored into that directory at the point it happens, so a single
// directory probe answers what HasRead/HasWrite of every remote context
// answered before. The per-context queries remain the reference semantics
// (tests cross-check the directory against them).
#ifndef SRC_ASF_ASF_CONTEXT_H_
#define SRC_ASF_ASF_CONTEXT_H_

#include <array>
#include <cstdint>

#include "src/common/abort_cause.h"
#include "src/common/defs.h"
#include "src/common/flat_table.h"
#include "src/asf/asf_params.h"
#include "src/asf/conflict_directory.h"
#include "src/asf/llb.h"

namespace asf {

// Per-context event counters (per core; aggregated by the harness).
struct AsfContextStats {
  uint64_t speculates = 0;  // Outermost SPECULATEs executed.
  uint64_t commits = 0;     // Outermost COMMITs.
  std::array<uint64_t, static_cast<size_t>(asfcommon::AbortCause::kNumCauses)> aborts{};

  uint64_t TotalAborts() const {
    uint64_t n = 0;
    for (uint64_t v : aborts) {
      n += v;
    }
    return n;
  }
};

class AsfContext {
 public:
  AsfContext(uint32_t core_id, const AsfVariant& variant)
      : core_id_(core_id), variant_(variant), llb_(variant.llb_entries) {}

  // Attaches the machine-global conflict directory this context mirrors its
  // protected sets into. Must be called while inactive; null (the default,
  // for isolated unit tests) disables mirroring.
  void BindDirectory(ConflictDirectory* dir) {
    ASF_CHECK(!active());
    dir_ = dir;
  }

  uint32_t core_id() const { return core_id_; }
  const AsfVariant& variant() const { return variant_; }
  bool active() const { return depth_ > 0; }
  uint32_t depth() const { return depth_; }

  // SPECULATE. Returns false if the nesting limit (256) is exceeded — the
  // caller must abort the region.
  bool Speculate();

  // True once the region performed a speculative store (ASF1's "atomic
  // phase"; under asf1_static_set the protected set is then frozen).
  bool in_atomic_phase() const { return atomic_phase_; }

  // COMMIT. Returns true if this was the outermost commit (sets cleared,
  // speculative state became authoritative).
  bool CommitTop();

  // Architectural abort: restore LLB backups to memory, clear all tracking,
  // deactivate. Safe to call on an inactive context (no-op, not counted).
  void Abort(asfcommon::AbortCause cause);

  // --- Protected-set bookkeeping (requester side) -------------------------
  // Add `line` to the read set. Returns false on capacity overflow.
  bool AddRead(uint64_t line);
  // Add `line` to the write set (backing up the host line's pre-image).
  // Must be called before the speculative store writes host memory.
  bool AddWrite(uint64_t line);
  // RELEASE hint: drop a read-only line.
  void Release(uint64_t line);

  // --- Conflict queries (victim side) --------------------------------------
  bool HasRead(uint64_t line) const;
  bool HasWrite(uint64_t line) const { return active() && llb_.HasWrittenLine(line); }
  // A remote (or unannotated local) access conflicts if it writes a line we
  // monitor, or touches a line we speculatively wrote.
  bool ConflictsWith(uint64_t line, bool remote_is_write) const {
    if (!active()) {
      return false;
    }
    if (remote_is_write) {
      return HasRead(line) || HasWrite(line);
    }
    return HasWrite(line);
  }

  // L1 line displaced (evicted or invalidated). For the w/-L1 variants a
  // displaced read-set line loses its monitoring: returns true, meaning the
  // region must take a capacity abort. (Invalidation-by-conflict is handled
  // first by the Machine's conflict scan, so anything arriving here is a
  // displacement effect: associativity pressure or remote invalidation of a
  // colocated line.)
  bool OnL1Drop(uint64_t line);

  uint32_t read_set_lines() const {
    return variant_.l1_read_set ? static_cast<uint32_t>(l1_read_lines_.size())
                                : llb_.size() - llb_.written_count();
  }
  uint32_t write_set_lines() const { return llb_.written_count(); }

  // Visits every line this context tracks, as (line, written) pairs — the
  // LLB entries plus (for w/-L1 variants) the L1 speculative-read bits.
  // Used by the commit/abort directory teardown and the coherence tests.
  template <typename Fn>
  void ForEachTrackedLine(Fn&& fn) const {
    llb_.ForEachLine(fn);
    if (variant_.l1_read_set) {
      l1_read_lines_.ForEach([&](uint64_t line) { fn(line, false); });
    }
  }

  const AsfContextStats& stats() const { return stats_; }
  void ResetStats() { stats_ = AsfContextStats{}; }

 private:
  // Tears this context's lines out of the directory ahead of an outermost
  // commit or an abort clearing the sets.
  void TeardownDirectory();

  const uint32_t core_id_;
  const AsfVariant variant_;
  ConflictDirectory* dir_ = nullptr;
  Llb llb_;
  // Read-set lines tracked via L1 speculative-read bits (w/-L1 variants).
  // Probed on every remote access during the conflict scan, so it uses the
  // flat open-addressing layout.
  asfcommon::FlatSet64 l1_read_lines_{128};
  uint32_t depth_ = 0;
  bool atomic_phase_ = false;
  AsfContextStats stats_;
};

}  // namespace asf

#endif  // SRC_ASF_ASF_CONTEXT_H_
