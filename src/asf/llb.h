// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Locked-line buffer (LLB): the fully associative CPU structure proposed by
// the paper (Sec. 2.3) that holds the addresses of protected memory lines
// plus backup copies of speculatively modified lines. On abort, the backups
// are written back to memory before the triggering probe is answered.
//
// In this simulation, "memory" is host memory: a speculative store writes
// the host location directly and the LLB keeps the 64-byte pre-image;
// RestoreAll() undoes every speculative modification. This is exactly the
// hardware design's data flow (write in place, backup in the LLB).
//
// The line->entry index is a fixed-size linear-probing slot array (the spec
// caps the LLB at 256 entries, so two slots per entry keeps probes short and
// the whole index in a few cache lines) instead of a node-based hash map:
// membership probes run on every simulated memory access of every core.
#ifndef SRC_ASF_LLB_H_
#define SRC_ASF_LLB_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/defs.h"

namespace asf {

class Llb {
 public:
  // Capacity must be a nonzero power of two (hardware sizes; the probe mask
  // and slot sizing rely on it). The spec's maximum is 256 entries.
  explicit Llb(uint32_t capacity)
      : capacity_(capacity),
        slot_mask_(capacity * 2 - 1),
        slot_shift_(SlotShift(capacity * 2)),
        slots_(capacity * 2, 0) {
    ASF_CHECK_MSG(capacity != 0 && (capacity & (capacity - 1)) == 0,
                  "LLB capacity must be a nonzero power of two");
    ASF_CHECK_MSG(capacity <= 256, "LLB capacity exceeds the ASF spec maximum (256)");
  }

  uint32_t capacity() const { return capacity_; }
  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }
  bool Full() const { return size() >= capacity_; }

  bool HasLine(uint64_t line) const { return slots_[SlotOf(line)] != 0; }
  bool HasWrittenLine(uint64_t line) const {
    uint32_t s = slots_[SlotOf(line)];
    return s != 0 && entries_[s - 1].written;
  }

  // Adds `line` to the protected set (read monitoring). Returns false if the
  // buffer is full (capacity abort).
  bool AddRead(uint64_t line) {
    size_t slot = SlotOf(line);
    if (slots_[slot] != 0) {
      return true;
    }
    if (Full()) {
      return false;
    }
    entries_.push_back(Entry{line, false, {}});
    slots_[slot] = static_cast<uint32_t>(entries_.size());
    return true;
  }

  // Adds `line` to the write set, taking a backup of the line's current
  // (pre-speculative) host content. Must be called before the speculative
  // store modifies host memory. Returns false on capacity overflow.
  bool AddWrite(uint64_t line) {
    size_t slot = SlotOf(line);
    if (slots_[slot] != 0) {
      Entry& e = entries_[slots_[slot] - 1];
      if (!e.written) {
        Backup(e);
      }
      return true;
    }
    if (Full()) {
      return false;
    }
    entries_.push_back(Entry{line, false, {}});
    slots_[slot] = static_cast<uint32_t>(entries_.size());
    Backup(entries_.back());
    return true;
  }

  // RELEASE semantics: drops a read-only line from the protected set. A
  // pending speculative store cannot be cancelled (only ABORT can), so a
  // written line is left untouched — RELEASE is strictly a hint. Returns
  // true when an entry was actually dropped (the conflict directory mirrors
  // exactly those drops).
  bool Release(uint64_t line) {
    size_t slot = SlotOf(line);
    if (slots_[slot] == 0 || entries_[slots_[slot] - 1].written) {
      return false;
    }
    RemoveAt(slot);
    return true;
  }

  // Commit: discard all entries; speculative values in memory become
  // authoritative (flash-clear of speculative bits).
  void Clear() {
    entries_.clear();
    std::memset(slots_.data(), 0, slots_.size() * sizeof(uint32_t));
    written_count_ = 0;
  }

  // Abort: write every backup copy back to memory, then clear.
  void RestoreAll() {
    for (Entry& e : entries_) {
      if (e.written) {
        std::memcpy(reinterpret_cast<void*>(e.line << asfcommon::kCacheLineShift),
                    e.backup.data(), asfcommon::kCacheLineBytes);
      }
    }
    Clear();
  }

  uint32_t written_count() const { return written_count_; }

  // Visits every tracked (line, written) pair in insertion-ish order (entry
  // array order; Release/RemoveAt may have swapped entries). Used for the
  // per-line conflict-directory teardown on commit/abort.
  template <typename Fn>
  void ForEachLine(Fn&& fn) const {
    for (const Entry& e : entries_) {
      fn(e.line, e.written);
    }
  }

 private:
  struct Entry {
    uint64_t line;
    bool written;
    std::array<uint8_t, asfcommon::kCacheLineBytes> backup;
  };

  static uint32_t SlotShift(uint32_t num_slots) {
    uint32_t shift = 64;
    for (uint32_t c = num_slots; c > 1; c >>= 1) {
      --shift;
    }
    return shift;
  }

  // Home position via Fibonacci hashing; line numbers share high bits (they
  // all point into the arena), so plain masking would cluster.
  size_t HomeOf(uint64_t line) const {
    return static_cast<size_t>((line * 0x9E3779B97F4A7C15ull) >> slot_shift_);
  }

  // Index of the slot holding `line`, or of the empty slot ending its chain.
  size_t SlotOf(uint64_t line) const {
    size_t s = HomeOf(line);
    while (slots_[s] != 0 && entries_[slots_[s] - 1].line != line) {
      s = (s + 1) & slot_mask_;
    }
    return s;
  }

  void Backup(Entry& e) {
    std::memcpy(e.backup.data(),
                reinterpret_cast<const void*>(e.line << asfcommon::kCacheLineShift),
                asfcommon::kCacheLineBytes);
    e.written = true;
    ++written_count_;
  }

  // Removes the entry referenced by `slot`. First backward-shift the slot
  // chain (so probing stays correct without tombstones), then swap-with-last
  // in the entry array and repoint the moved entry's slot.
  void RemoveAt(size_t slot) {
    const uint32_t pos = slots_[slot] - 1;
    const size_t last = entries_.size() - 1;
    if (entries_[pos].written) {
      --written_count_;
    }

    size_t i = slot;
    size_t j = slot;
    for (;;) {
      j = (j + 1) & slot_mask_;
      if (slots_[j] == 0) {
        break;
      }
      size_t home = HomeOf(entries_[slots_[j] - 1].line);
      if (((j - home) & slot_mask_) >= ((j - i) & slot_mask_)) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i] = 0;

    if (pos != last) {
      entries_[pos] = entries_[last];
      slots_[SlotOf(entries_[pos].line)] = pos + 1;
    }
    entries_.pop_back();
  }

  const uint32_t capacity_;
  const size_t slot_mask_;
  const uint32_t slot_shift_;
  std::vector<Entry> entries_;
  // Entry index + 1 per slot; 0 = empty. Sized 2x capacity (<= 50% load).
  std::vector<uint32_t> slots_;
  uint32_t written_count_ = 0;
};

}  // namespace asf

#endif  // SRC_ASF_LLB_H_
