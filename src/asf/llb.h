// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Locked-line buffer (LLB): the fully associative CPU structure proposed by
// the paper (Sec. 2.3) that holds the addresses of protected memory lines
// plus backup copies of speculatively modified lines. On abort, the backups
// are written back to memory before the triggering probe is answered.
//
// In this simulation, "memory" is host memory: a speculative store writes
// the host location directly and the LLB keeps the 64-byte pre-image;
// RestoreAll() undoes every speculative modification. This is exactly the
// hardware design's data flow (write in place, backup in the LLB).
#ifndef SRC_ASF_LLB_H_
#define SRC_ASF_LLB_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/common/defs.h"

namespace asf {

class Llb {
 public:
  explicit Llb(uint32_t capacity) : capacity_(capacity) {}

  uint32_t capacity() const { return capacity_; }
  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }
  bool Full() const { return size() >= capacity_; }

  bool HasLine(uint64_t line) const { return index_.contains(line); }
  bool HasWrittenLine(uint64_t line) const {
    auto it = index_.find(line);
    return it != index_.end() && entries_[it->second].written;
  }

  // Adds `line` to the protected set (read monitoring). Returns false if the
  // buffer is full (capacity abort).
  bool AddRead(uint64_t line) {
    if (index_.contains(line)) {
      return true;
    }
    if (Full()) {
      return false;
    }
    index_.emplace(line, entries_.size());
    entries_.push_back(Entry{line, false, {}});
    return true;
  }

  // Adds `line` to the write set, taking a backup of the line's current
  // (pre-speculative) host content. Must be called before the speculative
  // store modifies host memory. Returns false on capacity overflow.
  bool AddWrite(uint64_t line) {
    auto it = index_.find(line);
    if (it != index_.end()) {
      Entry& e = entries_[it->second];
      if (!e.written) {
        Backup(e);
      }
      return true;
    }
    if (Full()) {
      return false;
    }
    index_.emplace(line, entries_.size());
    entries_.push_back(Entry{line, false, {}});
    Backup(entries_.back());
    return true;
  }

  // RELEASE semantics: drops a read-only line from the protected set. A
  // pending speculative store cannot be cancelled (only ABORT can), so a
  // written line is left untouched — RELEASE is strictly a hint.
  void Release(uint64_t line) {
    auto it = index_.find(line);
    if (it == index_.end() || entries_[it->second].written) {
      return;
    }
    RemoveAt(it->second);
  }

  // Commit: discard all entries; speculative values in memory become
  // authoritative (flash-clear of speculative bits).
  void Clear() {
    entries_.clear();
    index_.clear();
  }

  // Abort: write every backup copy back to memory, then clear.
  void RestoreAll() {
    for (Entry& e : entries_) {
      if (e.written) {
        std::memcpy(reinterpret_cast<void*>(e.line << asfcommon::kCacheLineShift),
                    e.backup.data(), asfcommon::kCacheLineBytes);
      }
    }
    Clear();
  }

  uint32_t written_count() const {
    uint32_t n = 0;
    for (const Entry& e : entries_) {
      n += e.written ? 1 : 0;
    }
    return n;
  }

 private:
  struct Entry {
    uint64_t line;
    bool written;
    std::array<uint8_t, asfcommon::kCacheLineBytes> backup;
  };

  void Backup(Entry& e) {
    std::memcpy(e.backup.data(),
                reinterpret_cast<const void*>(e.line << asfcommon::kCacheLineShift),
                asfcommon::kCacheLineBytes);
    e.written = true;
  }

  void RemoveAt(size_t pos) {
    const uint64_t removed_line = entries_[pos].line;
    const size_t last = entries_.size() - 1;
    if (pos != last) {
      entries_[pos] = entries_[last];
      index_[entries_[pos].line] = pos;
    }
    index_.erase(removed_line);
    entries_.pop_back();
  }

  const uint32_t capacity_;
  std::vector<Entry> entries_;
  std::unordered_map<uint64_t, size_t> index_;
};

}  // namespace asf

#endif  // SRC_ASF_LLB_H_
