// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Configuration of the simulated ASF implementation variants and the cycle
// costs of the seven ASF instructions.
#ifndef SRC_ASF_ASF_PARAMS_H_
#define SRC_ASF_ASF_PARAMS_H_

#include <cstdint>
#include <string>

namespace asf {

// One of the paper's hardware implementation variants (Sec. 2.3 / Sec. 5).
//
//  * LLB-N:        a fully associative locked-line buffer with N entries
//                  holds the addresses of all protected lines plus backup
//                  copies of speculatively written lines; capacity aborts
//                  when read+write set exceeds N lines.
//  * LLB-N w/ L1:  the L1 data cache tracks the speculative read set via
//                  speculative-read bits (so read capacity is bounded by the
//                  L1's size *and associativity*, and any displacement of a
//                  tracked line loses the region); the LLB tracks and backs
//                  up only the write set (N entries).
struct AsfVariant {
  uint32_t llb_entries = 256;
  bool l1_read_set = false;
  // ASF1 semantics (Diestelhorst & Hohmuth, the revision the paper's
  // Sec. 6 contrasts with): the protected set cannot grow once the region
  // has entered its "atomic phase" (performed its first speculative store).
  // ASF2 — the paper's revision — lifts this restriction.
  bool asf1_static_set = false;

  std::string Name() const {
    std::string n = "LLB-" + std::to_string(llb_entries);
    if (l1_read_set) {
      n += " w/ L1";
    }
    if (asf1_static_set) {
      n += " (ASF1)";
    }
    return n;
  }

  static AsfVariant Llb8() { return AsfVariant{8, false}; }
  static AsfVariant Llb256() { return AsfVariant{256, false}; }
  static AsfVariant Llb8WithL1() { return AsfVariant{8, true}; }
  static AsfVariant Llb256WithL1() { return AsfVariant{256, true}; }
  static AsfVariant Asf1Llb256() { return AsfVariant{256, false, true}; }
};

// Cycle costs of ASF primitives, chosen to match the expectations stated in
// the paper for a realistic microarchitecture: SPECULATE/COMMIT are a
// pipeline-serializing handful of cycles; LOCK MOV costs one extra cycle
// over a plain MOV; RELEASE is a cheap hint.
struct AsfCosts {
  uint64_t speculate = 10;
  uint64_t commit = 20;
  uint64_t abort_op = 10;         // The ABORT instruction itself.
  uint64_t lock_mov_extra = 1;    // Added to the underlying access latency.
  uint64_t watch_extra = 1;       // WATCHR/WATCHW over a plain load.
  uint64_t release = 2;
  uint64_t abort_writeback = 20;  // Requester-side stall while a victim LLB
                                  // writes back backups before the probe is
                                  // answered.
  uint64_t syscall = 300;         // User/kernel transition (plus OS work
                                  // charged by the caller).
};

// ASF architectural limits (specification revision 2.1, paper Sec. 2.2).
inline constexpr uint32_t kMaxNestingDepth = 256;
// Eventual forward progress is guaranteed for regions protecting at most
// four lines (in the absence of contention).
inline constexpr uint32_t kGuaranteedCapacityLines = 4;

}  // namespace asf

#endif  // SRC_ASF_ASF_PARAMS_H_
