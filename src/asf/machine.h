// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// The simulated machine: scheduler + cores + memory hierarchy + one ASF
// context per core, wired together behind the AccessHandler interface.
//
// Every memory operation of every simulated thread flows through
// Machine::OnAccess in global cycle order. The Machine applies ASF's
// requester-wins contention policy exactly at cache-line granularity
// (equivalent to the hardware piggybacking on coherence probes — see
// DESIGN.md §2) via the machine-global ConflictDirectory (one probe per
// touched line instead of a sweep over every other core's context),
// performs the per-core protected-set bookkeeping, charges memory-hierarchy
// latencies, and models the OS events (page faults, timer interrupts,
// system calls) that abort speculative regions.
#ifndef SRC_ASF_MACHINE_H_
#define SRC_ASF_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/asf/asf_context.h"
#include "src/asf/conflict_directory.h"
#include "src/common/arena.h"
#include "src/asf/asf_params.h"
#include "src/common/abort_cause.h"
#include "src/mem/memory_system.h"
#include "src/obs/tx_event.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"

namespace asffault {
class FaultInjector;
}  // namespace asffault

namespace asf {

struct MachineParams {
  uint32_t num_cores = 8;
  asfsim::CoreParams core;
  asfmem::MemParams mem;
  AsfVariant variant;
  AsfCosts costs;
  // Simulation-arena reservation. The default fits every workload; the
  // litmus explorer shrinks it because it constructs one Machine per
  // enumerated interleaving and the mmap/munmap of a large reservation
  // dominates its host time.
  uint64_t arena_bytes = 512ull << 20;
  // Bounded-slack quantum execution (src/sim/slack.h; --slack N in every
  // bench and asf_explore): cores simulate ahead through quantum windows of
  // this many cycles, demoted to the exact interleaved path on cross-core
  // interaction. 0 (the default) keeps the exact single-event loop; results
  // are bit-identical for every value (perf_selfcheck --slack-check).
  uint64_t slack_cycles = 0;
  // Host-parallel slack planning (src/sim/slack_pool.h; --slack-jobs N in
  // every bench and asf_explore): partitions the simulated threads across
  // this many host workers that plan quantum windows behind a fork/join
  // barrier — the only path that speeds up a *single* large-machine run, as
  // opposed to the sweep engine's per-(config,seed) --jobs fan-out. 0/1 (the
  // default) keep the serial slack engine; a no-op unless slack_cycles is
  // also set. Results are bit-identical for every value (perf_selfcheck
  // --slack-par-check, tests/slack_parallel_test.cc).
  uint32_t slack_jobs = 1;
  // Mutation hook for the litmus suite (src/litmus): skips requester-wins
  // conflict resolution for *plain loads only*, letting an unannotated read
  // observe another core's uncommitted speculative store (a dirty read).
  // Plain loads do no protected-set bookkeeping, so the skip breaks no
  // directory invariant — it merely removes strong isolation. The semantics
  // tests assert they FAIL with this on, proving they actually exercise the
  // conflict-resolution path. Never set outside tests.
  bool break_requester_wins_for_testing = false;
};

// Ablation/equivalence hook (bench/perf_selfcheck --gate-check; env
// ASF_NO_SPECULATOR_GATE=1): force-disables the conflict directory's
// active-speculator gate and single-speculator fast path so every access
// runs the general per-line decode. The gates are pure host-side short
// circuits — simulated results must be bit-identical either way, which the
// perf_smoke ctest enforces. Each Machine snapshots the setting at
// construction.
bool SpeculatorGateDisabled();
void SetSpeculatorGateDisabled(bool disabled);

class Machine : public asfsim::AccessHandler, public asfmem::MemEventListener {
 public:
  explicit Machine(const MachineParams& params);
  ~Machine() override;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  asfsim::Scheduler& scheduler() { return scheduler_; }
  asfmem::MemorySystem& mem() { return mem_; }
  // Arena for all simulation-visible data (see src/common/arena.h): using it
  // makes experiments bit-for-bit reproducible across runs.
  asfcommon::SimArena& arena() { return arena_; }
  // Observability address normalization: events that name cache lines
  // (kConflictEdge) carry them arena-relative, because the arena's absolute
  // base is the one thing host mmap history moves between otherwise
  // identical runs — the *relative* layout is deterministic by construction
  // (src/common/arena.h). Rebasing at the source keeps live recorders,
  // offline replays, and trace exports consistent with each other, and
  // makes heatmaps bit-identical across runs whatever ran before in the
  // process (e.g. a slack planning pool whose cached thread stacks shifted
  // the next arena's placement). Lines outside the arena (runtime metadata
  // in host statics) pass through absolute.
  uint64_t ObsLine(uint64_t line) const {
    const uint64_t base = arena_.base() >> asfcommon::kCacheLineShift;
    const uint64_t count = arena_.capacity() >> asfcommon::kCacheLineShift;
    return line >= base && line - base < count ? line - base : line;
  }
  AsfContext& context(uint32_t core) { return *contexts_[core]; }
  // The speculative-line directory shared by all contexts (telemetry and
  // coherence introspection; contexts keep it up to date themselves).
  ConflictDirectory& conflict_directory() { return directory_; }
  const MachineParams& params() const { return params_; }

  // Optional host-side transaction-lifecycle observer. The TM runtimes emit
  // TxBegin/TxCommit/TxAbort/FallbackTransition/Backoff events through this
  // sink at zero simulated cost; null (the default) disables emission.
  void SetTxSink(asfobs::TxEventSink* sink) { tx_sink_ = sink; }
  asfobs::TxEventSink* tx_sink() const { return tx_sink_; }

  // Optional deterministic fault injector (src/fault): consulted once per
  // processed access, before the access's own semantics. Injected faults
  // abort the active region with the scheduled cause (emitting a
  // kFaultInjected event through the TxEvent sink) or, for interrupt/page-
  // fault injections outside a region, charge service latency only. Null
  // (the default) disables injection; the injector is borrowed, not owned.
  void SetFaultInjector(asffault::FaultInjector* injector) { fault_injector_ = injector; }
  asffault::FaultInjector* fault_injector() const { return fault_injector_; }

  // Executes the ABORT instruction on `t`'s core: architectural rollback
  // with `cause` reported in rAX, then control-flow unwind of the thread's
  // abortable scope. The returned task never resumes its awaiter.
  asfsim::Task<void> AbortRegion(asfsim::SimThread& t, asfcommon::AbortCause cause) {
    staged_abort_[t.id()] = cause;
    co_await t.Access(asfsim::AccessKind::kAbortOp, uint64_t{0}, 1);
    ASF_CHECK_MSG(false, "ABORT resumed its issuing region");
  }

  // --- AccessHandler -------------------------------------------------------
  asfsim::AccessOutcome OnAccess(asfsim::SimThread& thread, asfsim::AccessKind kind,
                                 uint64_t addr, uint32_t size) override;
  bool OnInterrupt(asfsim::SimThread& thread) override;

  // --- MemEventListener ----------------------------------------------------
  void OnL1LineDropped(uint32_t core, uint64_t line) override;

 private:
  // Aborts the region on `core` per requester-wins and marks the owning
  // thread for control-flow unwind. Returns the extra probe-stall cycles
  // charged to the requester (LLB backup write-back).
  uint64_t AbortVictim(uint32_t core, asfcommon::AbortCause cause);

  const MachineParams params_;
  asfcommon::SimArena arena_;
  asfsim::Scheduler scheduler_;
  asfmem::MemorySystem mem_;
  ConflictDirectory directory_;
  std::vector<std::unique_ptr<AsfContext>> contexts_;
  std::vector<asfcommon::AbortCause> staged_abort_;
  asfobs::TxEventSink* tx_sink_ = nullptr;
  asffault::FaultInjector* fault_injector_ = nullptr;
};

}  // namespace asf

#endif  // SRC_ASF_MACHINE_H_
