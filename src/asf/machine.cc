// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
#include "src/asf/machine.h"

#include <atomic>
#include <bit>
#include <cstdlib>

#include "src/fault/fault_injector.h"

namespace asf {

using asfcommon::AbortCause;
using asfcommon::LineOf;
using asfsim::AccessKind;
using asfsim::AccessOutcome;
using asfsim::SimThread;

namespace {

std::atomic<bool> g_speculator_gate_disabled{std::getenv("ASF_NO_SPECULATOR_GATE") != nullptr};

}  // namespace

bool SpeculatorGateDisabled() {
  return g_speculator_gate_disabled.load(std::memory_order_relaxed);
}

void SetSpeculatorGateDisabled(bool disabled) {
  g_speculator_gate_disabled.store(disabled, std::memory_order_relaxed);
}

Machine::Machine(const MachineParams& params)
    : params_(params),
      arena_(params.arena_bytes),
      scheduler_(params.num_cores, params.core),
      mem_(params.num_cores, params.mem),
      directory_(params.num_cores, !SpeculatorGateDisabled()),
      staged_abort_(params.num_cores, AbortCause::kNone) {
  for (uint32_t i = 0; i < params.num_cores; ++i) {
    contexts_.push_back(std::make_unique<AsfContext>(i, params.variant));
    contexts_.back()->BindDirectory(&directory_);
  }
  scheduler_.SetSlackCycles(params.slack_cycles);
  scheduler_.SetSlackJobs(params.slack_jobs);
  scheduler_.SetAccessHandler(this);
  mem_.SetListener(this);
}

Machine::~Machine() = default;

uint64_t Machine::AbortVictim(uint32_t core, AbortCause cause) {
  // Slack mode: a cross-core speculative overlap inside an open quantum
  // window demotes the window to the exact path (no-op when `core` is the
  // window owner aborting itself, or when no window is open).
  scheduler_.NoteCrossCoreAbort(core);
  AsfContext& victim = *contexts_[core];
  const bool had_writes = victim.write_set_lines() > 0;
  victim.Abort(cause);
  scheduler_.thread(core).MarkAbort(cause);
  // The victim's LLB writes its backups back before the probe is answered;
  // the requester stalls for that write-back (paper Sec. 2.3).
  return had_writes ? params_.costs.abort_writeback : 0;
}

AccessOutcome Machine::OnAccess(SimThread& thread, AccessKind kind, uint64_t addr,
                                uint32_t size) {
  const uint32_t cid = thread.id();
  AsfContext& ctx = *contexts_[cid];
  const AsfCosts& costs = params_.costs;

  // 0. Fault injection (src/fault): the scheduled adverse event, if any,
  //    strikes before the access's own semantics — a timer interrupt or
  //    conflicting probe does not wait for the victim's instruction to
  //    retire. kAbortOp is exempt: that region is already dying.
  uint64_t injected_latency = 0;
  if (fault_injector_ != nullptr && kind != AccessKind::kAbortOp) {
    asffault::InjectionOutcome inj = fault_injector_->OnAccess(cid, kind, ctx.active());
    injected_latency = inj.extra_latency;
    if (inj.cause != AbortCause::kNone) {
      if (tx_sink_ != nullptr) {
        asfobs::TxEvent ev;
        ev.cycle = thread.core().clock();
        ev.core = cid;
        ev.kind = asfobs::TxEventKind::kFaultInjected;
        ev.cause = inj.cause;
        ev.attempt = thread.core().attempt_seq();
        ev.arg0 = inj.abort ? 1 : 0;
        ev.arg1 = inj.extra_latency;
        tx_sink_->OnTxEvent(ev);
      }
      if (inj.abort) {
        ctx.Abort(inj.cause);
        thread.MarkAbort(inj.cause);
        return {injected_latency + costs.abort_op, true};
      }
    }
  }

  switch (kind) {
    case AccessKind::kSpeculate: {
      if (!ctx.Speculate()) {
        ctx.Abort(AbortCause::kDisallowed);
        thread.MarkAbort(AbortCause::kDisallowed);
        return {costs.speculate, true};
      }
      return {costs.speculate, false};
    }
    case AccessKind::kCommit: {
      ctx.CommitTop();
      return {costs.commit, false};
    }
    case AccessKind::kAbortOp: {
      AbortCause cause = staged_abort_[cid];
      ASF_CHECK_MSG(cause != AbortCause::kNone, "ABORT without a staged cause");
      staged_abort_[cid] = AbortCause::kNone;
      ctx.Abort(cause);
      thread.MarkAbort(cause);
      return {costs.abort_op, true};
    }
    case AccessKind::kSyscall: {
      if (ctx.active()) {
        ctx.Abort(AbortCause::kSyscall);
        thread.MarkAbort(AbortCause::kSyscall);
        return {costs.syscall, true};
      }
      return {costs.syscall, false};
    }
    case AccessKind::kRelease: {
      const uint64_t first = LineOf(addr);
      const uint64_t last = LineOf(addr + size - 1);
      for (uint64_t line = first; line <= last; ++line) {
        ctx.Release(line);
      }
      return {costs.release, false};
    }
    default:
      break;
  }

  // ---- Memory accesses (kLoad/kStore/kTxLoad/kTxStore/kWatchR/kWatchW) ----
  const bool is_tx = asfsim::IsTransactional(kind);
  ASF_CHECK_MSG(!is_tx || ctx.active(), "LOCK MOV/WATCH outside a speculative region");
  const bool write_like =
      kind == AccessKind::kStore || kind == AccessKind::kTxStore || kind == AccessKind::kWatchW;

  // 1. Requester-wins conflict resolution via the speculative-line
  //    directory: one probe per touched line (skipped entirely when no other
  //    core is speculating). Victims roll back architecturally *now* (before
  //    this access proceeds, in ascending core order like the historical
  //    all-contexts sweep), so the requester observes pre-speculative data.
  const uint64_t first = LineOf(addr);
  const uint64_t last = LineOf(addr + size - 1);
  uint64_t extra = injected_latency;  // Latency-only injections (no region).
  // Mutation hook (litmus suite): a plain load skips conflict resolution,
  // so it can observe a remote region's uncommitted store. See
  // MachineParams::break_requester_wins_for_testing.
  const bool skip_resolution =
      params_.break_requester_wins_for_testing && kind == AccessKind::kLoad;
  uint64_t victims = skip_resolution ? 0 : directory_.Resolve(first, last, write_like, cid);
  // Abort-causality edges for the observability layer: one per (contended
  // line, victim), read from directory state *before* the victims roll back
  // (teardown erases their line records). Derived from the records rather
  // than Resolve's internal path so the attribution is identical whichever
  // fast path the directory took. Host-side only — zero simulated cost.
  if (victims != 0 && tx_sink_ != nullptr) {
    for (uint64_t line = first; line <= last; ++line) {
      const ConflictDirectory::LineRecord* r = directory_.Find(line);
      if (r == nullptr) {
        continue;
      }
      uint64_t hit = write_like ? r->PresentBits()
                                : (r->writer == ConflictDirectory::kNoWriter
                                       ? 0
                                       : uint64_t{1} << r->writer);
      hit &= victims;
      while (hit != 0) {
        const uint32_t v = static_cast<uint32_t>(std::countr_zero(hit));
        hit &= hit - 1;
        asfobs::TxEvent ev;
        ev.cycle = thread.core().clock();
        ev.core = v;
        ev.kind = asfobs::TxEventKind::kConflictEdge;
        ev.mode = asfobs::TxMode::kHardware;
        ev.cause = AbortCause::kContention;
        ev.attempt = scheduler_.thread(v).core().attempt_seq();
        ev.arg0 = ObsLine(line);
        ev.arg1 = asfobs::PackConflictEdge(cid, r->writer == v, write_like);
        tx_sink_->OnTxEvent(ev);
      }
    }
  }
  while (victims != 0) {
    const uint32_t o = static_cast<uint32_t>(std::countr_zero(victims));
    victims &= victims - 1;
    ASF_CHECK(contexts_[o]->active());
    extra += AbortVictim(o, AbortCause::kContention);
  }

  // 2. Unannotated store to a speculatively written line of this core's own
  //    region: disallowed (raises an exception -> abort). Unannotated stores
  //    to lines in the read set are hoisted into the write set below.
  if (kind == AccessKind::kStore && ctx.active()) {
    for (uint64_t line = first; line <= last; ++line) {
      if (ctx.HasWrite(line)) {
        ctx.Abort(AbortCause::kDisallowed);
        thread.MarkAbort(AbortCause::kDisallowed);
        return {costs.abort_op, true};
      }
    }
  }

  // Slack mode: journal the window owner's speculatively written lines (the
  // per-quantum dirty-line journal; inline no-op when no window is open).
  if (ctx.active() && write_like) {
    scheduler_.NoteSpeculativeWrite(cid, first, last);
  }

  // 3. Timing (caches, TLB, page faults). L1 displacements observed here can
  //    capacity-abort regions of the w/-L1 variants, including our own.
  asfmem::MemResult mr = mem_.Access(cid, addr, size, write_like);
  uint64_t latency = mr.latency + extra;
  if (is_tx) {
    latency += (kind == AccessKind::kWatchR || kind == AccessKind::kWatchW) ? costs.watch_extra
                                                                            : costs.lock_mov_extra;
  }

  // 4. A page fault inside a speculative region aborts it (OS intervention);
  //    the page is serviced, so the retry proceeds.
  if (mr.page_fault && ctx.active()) {
    ctx.Abort(AbortCause::kPageFault);
    thread.MarkAbort(AbortCause::kPageFault);
    return {latency, true};
  }

  // 5. The fill path may have displaced one of our own tracked read lines
  //    (w/-L1 variants): OnL1LineDropped marked us; report the abort.
  if (thread.abort_marked()) {
    return {latency, true};
  }

  // 6. Protected-set bookkeeping for this core's own region.
  if (ctx.active()) {
    bool ok = true;
    for (uint64_t line = first; line <= last && ok; ++line) {
      switch (kind) {
        case AccessKind::kTxLoad:
        case AccessKind::kWatchR:
          ok = ctx.AddRead(line);
          break;
        case AccessKind::kTxStore:
        case AccessKind::kWatchW:
          ok = ctx.AddWrite(line);
          break;
        case AccessKind::kStore:
          // Colocation hoisting: an unprotected store to a line we monitor
          // for reading is promoted into the transactional write set.
          if (ctx.HasRead(line)) {
            ok = ctx.AddWrite(line);
          }
          break;
        default:
          break;
      }
    }
    if (!ok) {
      ctx.Abort(AbortCause::kCapacity);
      thread.MarkAbort(AbortCause::kCapacity);
      return {latency, true};
    }
  }
  return {latency, false};
}

bool Machine::OnInterrupt(SimThread& thread) {
  AsfContext& ctx = *contexts_[thread.id()];
  if (!ctx.active()) {
    return false;
  }
  ctx.Abort(AbortCause::kInterrupt);
  return true;
}

void Machine::OnL1LineDropped(uint32_t core, uint64_t line) {
  AsfContext& ctx = *contexts_[core];
  if (ctx.OnL1Drop(line)) {
    // Read-set tracking lost through displacement: the region cannot detect
    // conflicts on `line` any more and must abort (counted as capacity, as
    // in the paper's abort-reason analysis).
    AbortVictim(core, AbortCause::kCapacity);
  }
}

}  // namespace asf
