// Copyright (c) 2026 The asf-tm-stack Authors. All rights reserved.
// Machine-global speculative-line directory: the O(1) answer to "who holds
// this cache line speculatively?" that a real coherence protocol gets from
// its directory/probe filters. One record per line that any active region
// protects, holding a reader-core bitmap plus the (at most one) writer core.
//
// The Machine's requester-wins conflict resolution used to sweep every other
// core's context on every memory access (O(threads) hash probes per access);
// with this directory it is one FlatMap64 probe per touched line, plus two
// host-side short circuits that both leave simulated results bit-identical:
//
//  * active-speculator gate: a bitmap of cores with an open region; when no
//    *other* core is speculating (the dominant case in low-contention
//    phases), resolution is skipped without probing anything.
//  * single-speculator fast path: with exactly one other speculator the
//    victim candidate is known up front, so the per-line decode is a direct
//    membership test that stops at the first conflicting line instead of a
//    bitmap accumulation over all lines.
//
// Coherence contract: AsfContext mirrors every protected-set mutation into
// the directory at the point it happens — AddRead/AddWrite/Release while the
// region runs, and the per-line teardown on outermost commit, on abort (any
// cause: contention, capacity, displacement, fault injection), and nowhere
// else. A record therefore never names an inactive core, and at most one
// core is writer of a line at a time (requester-wins aborts every other
// holder before a write proceeds). tests/conflict_directory_test.cc checks
// both invariants against a brute-force all-contexts reference scan.
#ifndef SRC_ASF_CONFLICT_DIRECTORY_H_
#define SRC_ASF_CONFLICT_DIRECTORY_H_

#include <bit>
#include <cstdint>

#include "src/common/defs.h"
#include "src/common/flat_table.h"

namespace asf {

class ConflictDirectory {
 public:
  static constexpr uint32_t kNoWriter = ~0u;

  // Packed per-line record: which cores monitor the line for reading and
  // which single core (if any) speculatively wrote it. A written line is
  // held exclusively, so `readers` and `writer` are never populated by
  // different cores at once.
  struct LineRecord {
    uint64_t readers = 0;        // Bit per core with the line in its read set.
    uint32_t writer = kNoWriter; // Core with the line in its write set.

    bool Empty() const { return readers == 0 && writer == kNoWriter; }
    // All cores holding the line in any protected set.
    uint64_t PresentBits() const {
      return readers | (writer == kNoWriter ? 0 : uint64_t{1} << writer);
    }
  };

  // Host-side telemetry (zero simulated cost, never part of result digests).
  struct Stats {
    uint64_t resolutions = 0;     // Conflict-resolution invocations.
    uint64_t gate_skips = 0;      // Skipped entirely: no other speculator.
    uint64_t solo_fast_paths = 0; // Resolved via the single-speculator path.
    uint64_t probes = 0;          // Directory lookups performed.
    uint64_t probe_hits = 0;      // Lookups that found a record.
  };

  // The reader bitmap limits the directory to 64 cores; the gate must be
  // disabled only for the fast-vs-slow equivalence gate (perf_selfcheck
  // --gate-check), never because results depend on it.
  ConflictDirectory(uint32_t num_cores, bool gate_enabled)
      : gate_enabled_(gate_enabled) {
    ASF_CHECK_MSG(num_cores <= 64, "conflict directory supports at most 64 cores");
  }

  // --- Active-speculator tracking (AsfContext region transitions) ----------
  void OnActivate(uint32_t core) {
    ASF_CHECK((active_bitmap_ & Bit(core)) == 0);
    active_bitmap_ |= Bit(core);
  }
  void OnDeactivate(uint32_t core) {
    ASF_CHECK((active_bitmap_ & Bit(core)) != 0);
    active_bitmap_ &= ~Bit(core);
  }
  uint64_t active_bitmap() const { return active_bitmap_; }
  uint32_t active_count() const { return static_cast<uint32_t>(std::popcount(active_bitmap_)); }

  // --- Record maintenance (mirrored from AsfContext mutations) -------------
  void AddReader(uint32_t core, uint64_t line) {
    LineRecord& r = lines_[LineKey(line)];
    // Requester-wins resolved any remote writer before this read proceeded.
    ASF_CHECK(r.writer == kNoWriter);
    r.readers |= Bit(core);
  }

  // The line joins `core`'s write set; a read-set entry of the same core is
  // subsumed (the write monitoring covers it).
  void SetWriter(uint32_t core, uint64_t line) {
    LineRecord& r = lines_[LineKey(line)];
    // Exclusive-writer invariant: every other holder was aborted first.
    ASF_CHECK(r.writer == kNoWriter || r.writer == core);
    ASF_CHECK((r.readers & ~Bit(core)) == 0);
    r.readers &= ~Bit(core);
    r.writer = core;
  }

  // RELEASE (or L1 read-bit subsumption): the core dropped read monitoring.
  void DropReader(uint32_t core, uint64_t line) {
    LineRecord* r = lines_.Find(LineKey(line));
    if (r == nullptr) {
      return;
    }
    r->readers &= ~Bit(core);
    if (r->Empty()) {
      lines_.Erase(LineKey(line));
    }
  }

  // Commit/abort teardown: the core leaves the line entirely.
  void RemoveLine(uint32_t core, uint64_t line) {
    LineRecord* r = lines_.Find(LineKey(line));
    if (r == nullptr) {
      return;
    }
    r->readers &= ~Bit(core);
    if (r->writer == core) {
      r->writer = kNoWriter;
    }
    if (r->Empty()) {
      lines_.Erase(LineKey(line));
    }
  }

  // --- Conflict resolution -------------------------------------------------
  // Requester-wins victim set for an access of [first_line, last_line]:
  // a write-like access conflicts with every holder of a touched line, a
  // read-like one only with its writer. Returns the victim cores as a bitmap
  // (decoded in ascending core order by the caller, which preserves the
  // abort order of the old all-contexts sweep). Pure query plus telemetry:
  // the caller aborts the victims, which tears their records down.
  uint64_t Resolve(uint64_t first_line, uint64_t last_line, bool write_like,
                   uint32_t requester) {
    ++stats_.resolutions;
    const uint64_t others = active_bitmap_ & ~Bit(requester);
    if (gate_enabled_) {
      if (others == 0) {
        ++stats_.gate_skips;
        return 0;
      }
      if ((others & (others - 1)) == 0) {
        // Exactly one other speculator: test its membership directly and
        // stop at the first conflicting line — no bitmap accumulation.
        ++stats_.solo_fast_paths;
        const uint32_t solo = static_cast<uint32_t>(std::countr_zero(others));
        for (uint64_t line = first_line; line <= last_line; ++line) {
          const LineRecord* r = Probe(line);
          if (r == nullptr) {
            continue;
          }
          if (write_like ? (r->PresentBits() & others) != 0 : r->writer == solo) {
            return others;
          }
        }
        return 0;
      }
    }
    uint64_t victims = 0;
    for (uint64_t line = first_line; line <= last_line; ++line) {
      const LineRecord* r = Probe(line);
      if (r == nullptr) {
        continue;
      }
      victims |= write_like ? r->PresentBits()
                            : (r->writer == kNoWriter ? 0 : Bit(r->writer));
    }
    return victims & ~Bit(requester);
  }

  // --- Introspection (tests, telemetry) ------------------------------------
  const LineRecord* Find(uint64_t line) const { return lines_.Find(LineKey(line)); }
  size_t size() const { return lines_.size(); }
  // Visits every (line, record) pair in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    lines_.ForEach([&](uint64_t key, const LineRecord& r) { fn(key, r); });
  }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  static uint64_t Bit(uint32_t core) { return uint64_t{1} << core; }
  // Line numbers are host addresses >> 6, which can never be the flat
  // table's all-ones empty sentinel; use them as keys directly.
  static uint64_t LineKey(uint64_t line) { return line; }

  const LineRecord* Probe(uint64_t line) {
    ++stats_.probes;
    const LineRecord* r = lines_.Find(LineKey(line));
    if (r != nullptr) {
      ++stats_.probe_hits;
    }
    return r;
  }

  const bool gate_enabled_;
  uint64_t active_bitmap_ = 0;
  asfcommon::FlatMap64<LineRecord> lines_{256};
  Stats stats_;
};

}  // namespace asf

#endif  // SRC_ASF_CONFLICT_DIRECTORY_H_
